(** Structured overlay meshes for the direct-hop particle mover
    (paper section 3.2.2, after NESO).

    Two regular grids are laid over the unstructured mesh: the
    {e cell-map} takes a position straight to a nearby unstructured
    cell, and the {e rank-map} takes a position to the MPI rank owning
    that region. Direct-hop jumps to the cell-map's cell and finishes
    with a short multi-hop walk, skipping the cell-by-cell tracking of
    the pure multi-hop mover. *)

type t = {
  ox : float;
  oy : float;
  oz : float;  (** origin *)
  bx : float;
  by : float;
  bz : float;  (** bin sizes *)
  nbx : int;
  nby : int;
  nbz : int;
  cell_map : int array;  (** bin -> unstructured cell (-1: empty bin) *)
  mutable rank_map : int array;  (** bin -> owning rank (empty until assigned) *)
}

let bin_index t ~x ~y ~z =
  (* floor, not truncation: slightly negative coordinates must fall
     outside bin 0, not into it *)
  let ix = int_of_float (Float.floor ((x -. t.ox) /. t.bx)) in
  let iy = int_of_float (Float.floor ((y -. t.oy) /. t.by)) in
  let iz = int_of_float (Float.floor ((z -. t.oz) /. t.bz)) in
  if ix < 0 || ix >= t.nbx || iy < 0 || iy >= t.nby || iz < 0 || iz >= t.nbz then -1
  else (((iz * t.nby) + iy) * t.nbx) + ix

(** Nearby unstructured cell for a position; -1 when outside the
    overlay or in an empty bin (callers fall back to multi-hop). *)
let locate t ~x ~y ~z =
  let b = bin_index t ~x ~y ~z in
  if b < 0 then -1 else t.cell_map.(b)

let rank_of t ~x ~y ~z =
  let b = bin_index t ~x ~y ~z in
  if b < 0 || Array.length t.rank_map = 0 then -1 else t.rank_map.(b)

(** Memory footprint of the bookkeeping in bytes (the paper notes
    direct-hop trades memory for speed; used by the ablation report). *)
let memory_bytes t =
  (Array.length t.cell_map * 4) + (Array.length t.rank_map * 4)

(* Generic builder: assign to each bin the cell whose centroid is
   nearest among the cells overlapping it; exact point-location against
   candidate cells when a tester is provided. *)
let build_generic ~bounds:(ox, oy, oz, lx, ly, lz) ~bins:(nbx, nby, nbz) ~ncells ~centroid
    ?contains () =
  if nbx <= 0 || nby <= 0 || nbz <= 0 then invalid_arg "Overlay.build: bins must be positive";
  let bx = lx /. float_of_int nbx and by = ly /. float_of_int nby and bz = lz /. float_of_int nbz in
  let nbins = nbx * nby * nbz in
  let cell_map = Array.make nbins (-1) in
  let best_d2 = Array.make nbins infinity in
  let t = { ox; oy; oz; bx; by; bz; nbx; nby; nbz; cell_map; rank_map = [||] } in
  (* pass 1: nearest centroid per bin (cheap, always succeeds) *)
  for c = 0 to ncells - 1 do
    let cx, cy, cz = centroid c in
    let ix = int_of_float ((cx -. ox) /. bx) and iy = int_of_float ((cy -. oy) /. by) in
    let iz = int_of_float ((cz -. oz) /. bz) in
    for jx = max 0 (ix - 1) to min (nbx - 1) (ix + 1) do
      for jy = max 0 (iy - 1) to min (nby - 1) (iy + 1) do
        for jz = max 0 (iz - 1) to min (nbz - 1) (iz + 1) do
          let b = (((jz * nby) + jy) * nbx) + jx in
          let px = ox +. ((float_of_int jx +. 0.5) *. bx) in
          let py = oy +. ((float_of_int jy +. 0.5) *. by) in
          let pz = oz +. ((float_of_int jz +. 0.5) *. bz) in
          let d2 =
            ((px -. cx) ** 2.0) +. ((py -. cy) ** 2.0) +. ((pz -. cz) ** 2.0)
          in
          if d2 < best_d2.(b) then begin
            best_d2.(b) <- d2;
            cell_map.(b) <- c
          end
        done
      done
    done
  done;
  (* pass 2: refine with exact containment of bin centres when available *)
  (match contains with
  | None -> ()
  | Some inside ->
      for b = 0 to nbins - 1 do
        let jx = b mod nbx and jy = b / nbx mod nby and jz = b / (nbx * nby) in
        let px = ox +. ((float_of_int jx +. 0.5) *. bx) in
        let py = oy +. ((float_of_int jy +. 0.5) *. by) in
        let pz = oz +. ((float_of_int jz +. 0.5) *. bz) in
        match inside ~x:px ~y:py ~z:pz with Some c -> cell_map.(b) <- c | None -> ()
      done);
  t

(** Overlay over a tetrahedral duct mesh; [bins_per_cell] controls
    resolution relative to the mesh (paper uses a finer grid than the
    mesh for accuracy). *)
let of_tet_mesh ?(bins = (16, 16, 32)) (m : Tet_mesh.t) =
  build_generic
    ~bounds:(0.0, 0.0, 0.0, m.Tet_mesh.lx, m.Tet_mesh.ly, m.Tet_mesh.lz)
    ~bins ~ncells:m.Tet_mesh.ncells
    ~centroid:(fun c ->
      ( m.Tet_mesh.cell_centroid.(3 * c),
        m.Tet_mesh.cell_centroid.((3 * c) + 1),
        m.Tet_mesh.cell_centroid.((3 * c) + 2) ))
    ~contains:(fun ~x ~y ~z -> Tet_mesh.locate_brute m ~x ~y ~z)
    ()

(** Assign the rank map from a cell-to-rank ownership array. *)
let assign_ranks t ~cell_rank =
  t.rank_map <- Array.map (fun c -> if c >= 0 then cell_rank.(c) else -1) t.cell_map
