(** Structured overlay meshes for the direct-hop particle mover (paper
    section 3.2.2, after NESO): the {e cell-map} takes a position to a
    nearby unstructured cell, the {e rank-map} to the owning MPI rank.
    Direct-hop jumps to the cell-map's cell and finishes with a short
    multi-hop walk. *)

type t = {
  ox : float;
  oy : float;
  oz : float;
  bx : float;
  by : float;
  bz : float;
  nbx : int;
  nby : int;
  nbz : int;
  cell_map : int array;
  mutable rank_map : int array;
}

val bin_index : t -> x:float -> y:float -> z:float -> int
(** Bin of a position; -1 outside the overlay. *)

val locate : t -> x:float -> y:float -> z:float -> int
(** Nearby unstructured cell for a position; -1 when outside or in an
    empty bin (callers fall back to multi-hop). *)

val rank_of : t -> x:float -> y:float -> z:float -> int
(** Owning rank for a position; -1 outside or before
    {!assign_ranks}. *)

val memory_bytes : t -> int
(** Bookkeeping footprint (the direct-hop memory trade-off the paper
    notes). *)

val build_generic :
  bounds:float * float * float * float * float * float ->
  bins:int * int * int ->
  ncells:int ->
  centroid:(int -> float * float * float) ->
  ?contains:(x:float -> y:float -> z:float -> int option) ->
  unit ->
  t
(** Overlay over any cell soup: nearest-centroid assignment refined by
    exact point location when [contains] is given. *)

val of_tet_mesh : ?bins:int * int * int -> Tet_mesh.t -> t

val assign_ranks : t -> cell_rank:int array -> unit
(** Derive the rank-map from cell ownership. *)
