(** Small dense-matrix helpers for tetrahedral FEM geometry. *)

let det3 a b c d e f g h i = (a *. ((e *. i) -. (f *. h))) -. (b *. ((d *. i) -. (f *. g))) +. (c *. ((d *. h) -. (e *. g)))

(** Determinant of a 4x4 matrix given as rows. *)
let det4 (m : float array array) =
  let minor r0 r1 r2 c0 c1 c2 =
    det3 m.(r0).(c0) m.(r0).(c1) m.(r0).(c2) m.(r1).(c0) m.(r1).(c1) m.(r1).(c2) m.(r2).(c0)
      m.(r2).(c1) m.(r2).(c2)
  in
  (m.(0).(0) *. minor 1 2 3 1 2 3)
  -. (m.(0).(1) *. minor 1 2 3 0 2 3)
  +. (m.(0).(2) *. minor 1 2 3 0 1 3)
  -. (m.(0).(3) *. minor 1 2 3 0 1 2)

(** Solve the 3x3 system A x = b by Cramer's rule; raises
    [Failure "singular"] when |det A| is tiny. *)
let solve3 (a : float array array) (b : float array) =
  let d =
    det3 a.(0).(0) a.(0).(1) a.(0).(2) a.(1).(0) a.(1).(1) a.(1).(2) a.(2).(0) a.(2).(1)
      a.(2).(2)
  in
  if Float.abs d < 1e-300 then failwith "singular";
  let dx =
    det3 b.(0) a.(0).(1) a.(0).(2) b.(1) a.(1).(1) a.(1).(2) b.(2) a.(2).(1) a.(2).(2)
  in
  let dy =
    det3 a.(0).(0) b.(0) a.(0).(2) a.(1).(0) b.(1) a.(1).(2) a.(2).(0) b.(2) a.(2).(2)
  in
  let dz =
    det3 a.(0).(0) a.(0).(1) b.(0) a.(1).(0) a.(1).(1) b.(1) a.(2).(0) a.(2).(1) b.(2)
  in
  [| dx /. d; dy /. d; dz /. d |]

(** Cross product of 3-vectors. *)
let cross a b =
  [|
    (a.(1) *. b.(2)) -. (a.(2) *. b.(1));
    (a.(2) *. b.(0)) -. (a.(0) *. b.(2));
    (a.(0) *. b.(1)) -. (a.(1) *. b.(0));
  |]

let dot3 a b = (a.(0) *. b.(0)) +. (a.(1) *. b.(1)) +. (a.(2) *. b.(2))
let sub3 a b = [| a.(0) -. b.(0); a.(1) -. b.(1); a.(2) -. b.(2) |]

(** Inverse of a small n x n matrix by Gauss-Jordan elimination with
    partial pivoting; raises [Failure "singular"] on rank deficiency. *)
let inv (a : float array array) =
  let n = Array.length a in
  let m = Array.init n (fun i -> Array.copy a.(i)) in
  let id = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1.0 else 0.0)) in
  for col = 0 to n - 1 do
    (* pivot selection *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
    done;
    if Float.abs m.(!pivot).(col) < 1e-300 then failwith "singular";
    if !pivot <> col then begin
      let t = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- t;
      let t = id.(col) in
      id.(col) <- id.(!pivot);
      id.(!pivot) <- t
    end;
    let inv_p = 1.0 /. m.(col).(col) in
    for j = 0 to n - 1 do
      m.(col).(j) <- m.(col).(j) *. inv_p;
      id.(col).(j) <- id.(col).(j) *. inv_p
    done;
    for r = 0 to n - 1 do
      if r <> col then begin
        let f = m.(r).(col) in
        if f <> 0.0 then
          for j = 0 to n - 1 do
            m.(r).(j) <- m.(r).(j) -. (f *. m.(col).(j));
            id.(r).(j) <- id.(r).(j) -. (f *. id.(col).(j))
          done
      end
    done
  done;
  id
