(** Jacobi-preconditioned conjugate gradients — the stand-in for the
    PETSc KSP solve used by Mini-FEM-PIC's field solver. *)

type stats = { iterations : int; residual : float; converged : bool }

val solve :
  ?rtol:float ->
  ?atol:float ->
  ?max_iter:int ->
  Csr.t ->
  b:float array ->
  x:float array ->
  stats
(** Solve A x = b in place ([x] holds the initial guess on entry and
    the solution on exit). A must be symmetric positive definite. *)
