(** Small dense-matrix helpers for tetrahedral FEM geometry. *)

val det3 :
  float -> float -> float -> float -> float -> float -> float -> float -> float -> float
(** Determinant of a 3x3 matrix given row-major. *)

val det4 : float array array -> float
(** Determinant of a 4x4 matrix given as rows. *)

val solve3 : float array array -> float array -> float array
(** Cramer solve of a 3x3 system; raises [Failure "singular"]. *)

val cross : float array -> float array -> float array
val dot3 : float array -> float array -> float
val sub3 : float array -> float array -> float array

val inv : float array array -> float array array
(** Gauss-Jordan inverse with partial pivoting of a small n x n
    matrix; raises [Failure "singular"] on rank deficiency. *)
