(** Compressed-sparse-row matrix, assembled from coordinate triplets.

    FEM assembly accumulates (row, col, value) triplets per element;
    [of_triplets] sums duplicates and compresses. A fixed sparsity
    pattern can be reused across Newton iterations via [zero_values] +
    [add_at]. *)

type t

val nrows : t -> int
val nnz : t -> int

val of_triplets : int -> (int * int * float) list -> t
(** [of_triplets n triplets] builds an [n x n] matrix, summing
    duplicate coordinates; raises [Invalid_argument] on out-of-range
    entries. *)

val zero_values : t -> unit
(** Zero the stored values, keeping the sparsity pattern. *)

val add_at : t -> int -> int -> float -> unit
(** [add_at m r c v] adds [v] at (r, c); the position must exist in
    the pattern. *)

val get : t -> int -> int -> float
(** Entry at (r, c); 0 outside the pattern. *)

val spmv : t -> float array -> float array -> unit
(** [spmv m x y] computes y := A x. *)

val inv_diagonal : t -> float array
(** Reciprocal diagonal (Jacobi preconditioner); zeros map to 1. *)

val to_dense : t -> float array array
