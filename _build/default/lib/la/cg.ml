(** Jacobi-preconditioned conjugate-gradient solver — the stand-in for
    the PETSc KSP solve used by Mini-FEM-PIC's field solver. *)

type stats = { iterations : int; residual : float; converged : bool }

(** Solve A x = b in place (x holds the initial guess on entry and the
    solution on exit). A must be symmetric positive definite, which the
    FEM Laplacian with Dirichlet rows eliminated is. *)
let solve ?(rtol = 1e-10) ?(atol = 1e-50) ?(max_iter = 10_000) (a : Csr.t) ~(b : float array)
    ~(x : float array) =
  let n = Csr.nrows a in
  if Array.length b <> n || Array.length x <> n then invalid_arg "Cg.solve: size mismatch";
  let inv_diag = Csr.inv_diagonal a in
  let r = Vec.create n and z = Vec.create n and p = Vec.create n and ap = Vec.create n in
  Csr.spmv a x ap;
  for i = 0 to n - 1 do
    r.(i) <- b.(i) -. ap.(i)
  done;
  let b_norm = Vec.norm2 b in
  let tol = Float.max (rtol *. (if b_norm > 0.0 then b_norm else 1.0)) atol in
  Vec.mul_pointwise inv_diag r z;
  Array.blit z 0 p 0 n;
  let rz = ref (Vec.dot r z) in
  let res = ref (Vec.norm2 r) in
  let iter = ref 0 in
  while !res > tol && !iter < max_iter do
    Csr.spmv a p ap;
    let pap = Vec.dot p ap in
    if pap <= 0.0 then (
      (* matrix not SPD (or p in its null space): bail out with what we have *)
      iter := max_iter)
    else begin
      let alpha = !rz /. pap in
      Vec.axpy alpha p x;
      Vec.axpy (-.alpha) ap r;
      Vec.mul_pointwise inv_diag r z;
      let rz' = Vec.dot r z in
      let beta = rz' /. !rz in
      rz := rz';
      Vec.aypx beta z p;
      res := Vec.norm2 r;
      incr iter
    end
  done;
  { iterations = !iter; residual = !res; converged = !res <= tol }
