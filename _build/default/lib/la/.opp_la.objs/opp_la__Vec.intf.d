lib/la/vec.mli:
