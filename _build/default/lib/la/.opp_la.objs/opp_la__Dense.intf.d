lib/la/dense.mli:
