lib/la/csr.ml: Array Float List Printf
