lib/la/csr.mli:
