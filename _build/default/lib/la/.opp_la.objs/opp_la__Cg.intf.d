lib/la/cg.mli: Csr
