lib/la/cg.ml: Array Csr Float Vec
