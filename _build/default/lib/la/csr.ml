(** Compressed-sparse-row matrix, assembled from coordinate triplets.

    FEM assembly (ComputeJMatrix in Mini-FEM-PIC) first accumulates
    (row, col, value) triplets per element, then [of_triplets] sums
    duplicates and compresses. A fixed sparsity pattern can be reused
    across Newton iterations via [zero_values] + [add_at]. *)

type t = {
  n : int;  (** square dimension *)
  row_ptr : int array;  (** length n+1 *)
  col_idx : int array;
  values : float array;
}

let nrows m = m.n
let nnz m = m.row_ptr.(m.n)

let of_triplets n triplets =
  if n < 0 then invalid_arg "Csr.of_triplets: negative dimension";
  List.iter
    (fun (r, c, _) ->
      if r < 0 || r >= n || c < 0 || c >= n then
        invalid_arg (Printf.sprintf "Csr.of_triplets: entry (%d,%d) out of %dx%d" r c n n))
    triplets;
  let sorted =
    List.sort (fun (r1, c1, _) (r2, c2, _) -> if r1 <> r2 then compare r1 r2 else compare c1 c2)
      triplets
  in
  (* merge duplicates *)
  let merged = ref [] in
  List.iter
    (fun (r, c, v) ->
      match !merged with
      | (r', c', v') :: rest when r = r' && c = c' -> merged := (r, c, v +. v') :: rest
      | _ -> merged := (r, c, v) :: !merged)
    sorted;
  let entries = Array.of_list (List.rev !merged) in
  let nnz = Array.length entries in
  let row_ptr = Array.make (n + 1) 0 in
  Array.iter (fun (r, _, _) -> row_ptr.(r + 1) <- row_ptr.(r + 1) + 1) entries;
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  let col_idx = Array.make nnz 0 and values = Array.make nnz 0.0 in
  Array.iteri
    (fun k (_, c, v) ->
      col_idx.(k) <- c;
      values.(k) <- v)
    entries;
  { n; row_ptr; col_idx; values }

(** Zero the stored values, keeping the sparsity pattern. *)
let zero_values m = Array.fill m.values 0 (Array.length m.values) 0.0

(** Add [v] at (r, c); the position must exist in the pattern. *)
let add_at m r c v =
  if r < 0 || r >= m.n then invalid_arg "Csr.add_at: row out of range";
  let rec find k =
    if k >= m.row_ptr.(r + 1) then
      invalid_arg (Printf.sprintf "Csr.add_at: (%d,%d) not in pattern" r c)
    else if m.col_idx.(k) = c then k
    else find (k + 1)
  in
  let k = find m.row_ptr.(r) in
  m.values.(k) <- m.values.(k) +. v

let get m r c =
  let rec find k =
    if k >= m.row_ptr.(r + 1) then 0.0
    else if m.col_idx.(k) = c then m.values.(k)
    else find (k + 1)
  in
  find m.row_ptr.(r)

(** y := A x *)
let spmv m x y =
  if Array.length x <> m.n || Array.length y <> m.n then invalid_arg "Csr.spmv: size mismatch";
  for r = 0 to m.n - 1 do
    let s = ref 0.0 in
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      s := !s +. (m.values.(k) *. x.(m.col_idx.(k)))
    done;
    y.(r) <- !s
  done

(** Reciprocal of the diagonal, for the Jacobi preconditioner; zero
    diagonal entries map to 1.0. *)
let inv_diagonal m =
  Array.init m.n (fun r ->
      let d = get m r r in
      if Float.abs d > 0.0 then 1.0 /. d else 1.0)

let to_dense m =
  let a = Array.make_matrix m.n m.n 0.0 in
  for r = 0 to m.n - 1 do
    for k = m.row_ptr.(r) to m.row_ptr.(r + 1) - 1 do
      a.(r).(m.col_idx.(k)) <- a.(r).(m.col_idx.(k)) +. m.values.(k)
    done
  done;
  a
