(** Dense vector kit over [float array]. *)

let create n = Array.make n 0.0
let copy = Array.copy

let dot x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Vec.dot: length mismatch";
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

(** y := y + a*x *)
let axpy a x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Vec.axpy: length mismatch";
  for i = 0 to n - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

(** y := x + a*y (PETSc's AYPX) *)
let aypx a x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Vec.aypx: length mismatch";
  for i = 0 to n - 1 do
    y.(i) <- x.(i) +. (a *. y.(i))
  done

let scale a x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- a *. x.(i)
  done

let fill x v = Array.fill x 0 (Array.length x) v

let sub x y =
  let n = Array.length x in
  Array.init n (fun i -> x.(i) -. y.(i))

(** Pointwise z := x .* y (Jacobi preconditioner application). *)
let mul_pointwise x y z =
  let n = Array.length x in
  for i = 0 to n - 1 do
    z.(i) <- x.(i) *. y.(i)
  done
