(** Dense vector kit over [float array]; length mismatches raise
    [Invalid_argument]. *)

val create : int -> float array
val copy : float array -> float array
val dot : float array -> float array -> float
val norm2 : float array -> float
val norm_inf : float array -> float

val axpy : float -> float array -> float array -> unit
(** [axpy a x y] computes y := y + a x. *)

val aypx : float -> float array -> float array -> unit
(** [aypx a x y] computes y := x + a y (PETSc's AYPX). *)

val scale : float -> float array -> unit
val fill : float array -> float -> unit
val sub : float array -> float array -> float array

val mul_pointwise : float array -> float array -> float array -> unit
(** [mul_pointwise x y z] computes z := x .* y (Jacobi application). *)
