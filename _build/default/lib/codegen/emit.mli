(** Backend code emitters: loop IR -> platform-specific C++-like
    source, one template per parallelization (paper section 3.4, plus
    the future-work SYCL target). Adding a parallelization is adding a
    template — the paper's extensibility claim. *)

type target = Seq | Omp | Cuda | Hip | Mpi | Sycl

val target_to_string : target -> string
val target_of_string : string -> target option
val all_targets : target list

val emit_loop : Ir.program -> target -> Ir.loop -> string
(** One generated function (par_loop wrapper or mover). *)

val emit_program : Ir.program -> target -> string
(** A full translation unit for one target. *)

val emit_all : Ir.program -> (string * string) list
(** [(relative filename, contents)] for every target, mirroring the
    seq/omp/mpi/cuda/hip/sycl output directories of the real
    translator. *)
