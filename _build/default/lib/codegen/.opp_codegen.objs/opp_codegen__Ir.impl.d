lib/codegen/ir.ml: List Printf
