lib/codegen/parser.mli: Ir
