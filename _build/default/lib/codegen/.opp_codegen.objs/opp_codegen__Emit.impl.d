lib/codegen/emit.ml: Fun Ir List Option Printf String Template
