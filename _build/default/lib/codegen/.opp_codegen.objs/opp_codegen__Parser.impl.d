lib/codegen/parser.ml: Ir List Printf String
