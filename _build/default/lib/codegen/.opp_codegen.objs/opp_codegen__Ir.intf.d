lib/codegen/ir.mli:
