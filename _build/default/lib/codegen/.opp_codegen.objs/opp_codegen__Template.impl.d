lib/codegen/template.ml: Buffer List Printf String
