lib/codegen/template.mli:
