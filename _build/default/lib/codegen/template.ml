(** A minimal Jinja2-style template engine.

    The paper's translator populates Jinja2 templates with loop
    information extracted from the application's AST (section 3.4);
    this engine supports the subset those templates need:

    - [{{ name }}] and [{{ name.field }}] substitution,
    - [{% for x in list %} ... {% endfor %}] iteration (with
      [{{ loop.index }}] and [{{ loop.last }}] inside),
    - [{% if cond %} ... {% else %} ... {% endif %}] on boolean
      values (a bare name or [name.field]). *)

type value =
  | Str of string
  | Int of int
  | Bool of bool
  | List of value list
  | Assoc of (string * value) list

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* --- template AST --- *)

type node =
  | Text of string
  | Subst of string list  (* dotted path *)
  | For of string * string list * node list
  | If of string list * node list * node list

(* --- lexing: split into Text / {{...}} / {%...%} chunks --- *)

type token = T_text of string | T_subst of string | T_stmt of string

let lex source =
  let tokens = ref [] in
  let n = String.length source in
  let buf = Buffer.create 64 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      tokens := T_text (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    end
  in
  let rec scan i =
    if i >= n then flush_text ()
    else if i + 1 < n && source.[i] = '{' && (source.[i + 1] = '{' || source.[i + 1] = '%')
    then begin
      let closing = if source.[i + 1] = '{' then "}}" else "%}" in
      flush_text ();
      let rec find j =
        if j + 1 >= n then error "unterminated %s at offset %d" closing i
        else if source.[j] = closing.[0] && source.[j + 1] = closing.[1] then j
        else find (j + 1)
      in
      let close = find (i + 2) in
      let inner = String.trim (String.sub source (i + 2) (close - i - 2)) in
      tokens :=
        (if source.[i + 1] = '{' then T_subst inner else T_stmt inner) :: !tokens;
      scan (close + 2)
    end
    else begin
      Buffer.add_char buf source.[i];
      scan (i + 1)
    end
  in
  scan 0;
  List.rev !tokens

(* --- parsing into nested nodes --- *)

let path_of s = String.split_on_char '.' (String.trim s)

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse source =
  let tokens = lex source in
  (* returns nodes and the unconsumed tail starting at a closer *)
  let rec nodes acc = function
    | [] -> (List.rev acc, [])
    | T_text s :: rest -> nodes (Text s :: acc) rest
    | T_subst s :: rest -> nodes (Subst (path_of s) :: acc) rest
    | T_stmt s :: rest -> (
        match split_words s with
        | [ "for"; var; "in"; list ] ->
            let body, rest = nodes [] rest in
            let rest = expect_closer "endfor" rest in
            nodes (For (var, path_of list, body) :: acc) rest
        | [ "if"; cond ] ->
            let then_, rest = nodes [] rest in
            let else_, rest =
              match rest with
              | T_stmt e :: rest' when String.trim e = "else" -> nodes [] rest'
              | _ -> ([], rest)
            in
            let rest = expect_closer "endif" rest in
            nodes (If (path_of cond, then_, else_) :: acc) rest
        | [ closer ] when closer = "endfor" || closer = "endif" || closer = "else" ->
            (List.rev acc, T_stmt s :: rest)
        | _ -> error "bad statement: {%% %s %%}" s)
  and expect_closer which = function
    | T_stmt s :: rest when String.trim s = which -> rest
    | _ -> error "missing {%% %s %%}" which
  in
  match nodes [] tokens with
  | result, [] -> result
  | _, T_stmt s :: _ -> error "unexpected {%% %s %%}" s
  | _, _ -> error "unbalanced template"

(* --- evaluation --- *)

let rec lookup env path =
  match path with
  | [] -> error "empty substitution"
  | name :: rest -> (
      match List.assoc_opt name env with
      | None -> error "unknown name '%s'" name
      | Some v -> follow v rest)

and follow v = function
  | [] -> v
  | field :: rest -> (
      match v with
      | Assoc fields -> (
          match List.assoc_opt field fields with
          | Some v' -> follow v' rest
          | None -> error "unknown field '%s'" field)
      | _ -> error "field access '%s' on a non-record value" field)

let to_string = function
  | Str s -> s
  | Int i -> string_of_int i
  | Bool b -> string_of_bool b
  | List _ | Assoc _ -> error "cannot render a structured value"

let to_bool = function
  | Bool b -> b
  | Str s -> s <> ""
  | Int i -> i <> 0
  | List l -> l <> []
  | Assoc _ -> true

let rec render_nodes buf env nodes = List.iter (render_node buf env) nodes

and render_node buf env = function
  | Text s -> Buffer.add_string buf s
  | Subst path -> Buffer.add_string buf (to_string (lookup env path))
  | If (cond, then_, else_) ->
      render_nodes buf env (if to_bool (lookup env cond) then then_ else else_)
  | For (var, list_path, body) -> (
      match lookup env list_path with
      | List items ->
          let n = List.length items in
          List.iteri
            (fun i item ->
              let loop_info =
                Assoc [ ("index", Int i); ("index1", Int (i + 1)); ("last", Bool (i = n - 1)) ]
              in
              render_nodes buf ((var, item) :: ("loop", loop_info) :: env) body)
            items
      | _ -> error "for over a non-list value")

(** Render [source] with the bindings in [env]. *)
let render source env =
  let buf = Buffer.create (String.length source * 2) in
  render_nodes buf env (parse source);
  Buffer.contents buf
