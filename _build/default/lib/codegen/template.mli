(** A minimal Jinja2-style template engine (the paper's translator uses
    Jinja2, section 3.4). Supported: [{{ name }}] and
    [{{ name.field }}] substitution; [{% for x in list %}] with
    [loop.index]/[loop.index1]/[loop.last]; [{% if cond %}] /
    [{% else %}] / [{% endif %}] on truthy values. *)

type value =
  | Str of string
  | Int of int
  | Bool of bool
  | List of value list
  | Assoc of (string * value) list

exception Error of string

val render : string -> (string * value) list -> string
(** [render template env] expands the template; raises {!Error} on
    syntax errors, unknown names, or type mismatches. *)
