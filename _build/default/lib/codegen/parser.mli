(** Frontend of the translator: parses the declarative loop manifest
    (the stand-in for the paper's clang AST walk) into the validated
    IR. See the module implementation header or
    [examples/specs/fempic.oppic] for the grammar. *)

exception Parse_error of string

val parse : string -> Ir.program
(** Parse and validate a manifest; raises {!Parse_error} on syntax
    errors and {!Ir.Invalid} on semantic ones. *)
