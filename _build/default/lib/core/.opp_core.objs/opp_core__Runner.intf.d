lib/core/runner.mli: Arg Profile Seq Types
