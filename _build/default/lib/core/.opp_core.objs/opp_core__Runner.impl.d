lib/core/runner.ml: Arg Profile Seq Types
