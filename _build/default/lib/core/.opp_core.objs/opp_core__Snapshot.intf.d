lib/core/snapshot.mli: Types
