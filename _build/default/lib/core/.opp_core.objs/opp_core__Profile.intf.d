lib/core/profile.mli: Format
