lib/core/seq.ml: Arg Array List Particle Printf Profile Types Unix View
