lib/core/arg.mli: Types
