lib/core/rng.mli:
