lib/core/snapshot.ml: Array Fun Int64 List Particle Printf String Types
