lib/core/particle.ml: Array List Types
