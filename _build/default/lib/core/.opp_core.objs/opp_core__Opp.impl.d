lib/core/opp.ml: Arg Particle Seq Types View
