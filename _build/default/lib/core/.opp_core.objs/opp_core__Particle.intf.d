lib/core/particle.mli: Types
