lib/core/view.mli:
