lib/core/arg.ml: Array Printf Types
