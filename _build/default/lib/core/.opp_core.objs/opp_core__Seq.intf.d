lib/core/seq.mli: Arg Profile Types View
