lib/core/view.ml: Array
