lib/core/rng.ml: Array Float Int64
