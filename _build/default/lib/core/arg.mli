(** Argument descriptors for [par_loop] / [particle_move], mirroring
    [opp_arg_dat] / [opp_arg_gbl] of the paper's API.

    An argument is a dat plus how it is reached from the iteration
    set: directly, through one mesh map (slot [idx]), or — for
    particle loops — through the particle-to-cell map, optionally
    composed with a mesh map (the double indirection of
    particle-to-node scatters). *)

open Types

type t =
  | Arg_dat of {
      dat : dat;
      idx : int;  (** slot within the map's arity; ignored if [map = None] *)
      map : map option;
      p2c : map option;
      acc : access;
    }
  | Arg_gbl of { buf : float array; acc : access }

val dat : dat -> access -> t
(** Directly accessed dat. *)

val dat_i : dat -> idx:int -> map:map -> access -> t
(** Dat accessed through mesh map [map], slot [idx]. *)

val dat_p2c : dat -> p2c:map -> access -> t
(** Cell dat accessed from a particle through [p2c]. *)

val dat_p2c_i : dat -> idx:int -> map:map -> p2c:map -> access -> t
(** Double indirection: particle -> cell -> mesh element. *)

val gbl : float array -> access -> t
(** Global argument (reduction buffer or read-only constants). *)

val access : t -> access
val view_dim : t -> int

val validate : iter_set:set -> t -> unit
(** Raises [Invalid_argument] describing the first inconsistency
    between the argument and the loop's iteration set. *)

val offset : t -> int -> int
(** Base offset into the dat's storage for iteration element [e]. *)

val bytes_per_elem : t -> int
(** Estimated bytes touched per iteration element, for the ledger. *)
