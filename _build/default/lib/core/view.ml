(** A kernel's window onto one argument of a parallel loop.

    Backends re-point [data]/[base] per iteration, so user kernels are
    written once against this interface and reused by every
    parallelization (the paper's separation of concerns). *)

type t = { mutable data : float array; mutable base : int; dim : int }

let make dim = { data = [||]; base = 0; dim }
let of_array ?(base = 0) data dim = { data; base; dim }

let get v i = v.data.(v.base + i)
let set v i x = v.data.(v.base + i) <- x
let inc v i x = v.data.(v.base + i) <- v.data.(v.base + i) +. x

(** Copy the [dim] values under the view into a fresh array. *)
let to_array v = Array.sub v.data v.base v.dim

let fill v x =
  for i = 0 to v.dim - 1 do
    set v i x
  done

let blit_from v src =
  for i = 0 to v.dim - 1 do
    set v i src.(i)
  done
