(** Deterministic, seedable splitmix64 RNG.

    Simulations must be bit-reproducible across backends (the
    validation tests compare seq / threads / GPU-sim / dist runs), so
    all stochastic choices (particle injection positions, thermal
    velocities, perturbations) go through explicitly threaded states
    rather than the global [Random]. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** Uniform in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform integer in [0, n). *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  int_of_float (float t *. float_of_int n)

(** Inverse of the standard normal CDF (Acklam's rational
    approximation, |relative error| < 1.15e-9): the quiet-start
    velocity loading of kinetic benchmarks maps stratified uniforms
    through this instead of sampling. Pure function of [p] in (0,1). *)
let normal_quantile p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Rng.normal_quantile: p must be in (0,1)";
  let a = [| -39.69683028665376; 220.9460984245205; -275.9285104469687;
             138.3577518672690; -30.66479806614716; 2.506628277459239 |] in
  let b = [| -54.47609879822406; 161.5858368580409; -155.6989798598866;
             66.80131188771972; -13.28068155288572 |] in
  let c = [| -0.007784894002430293; -0.3223964580411365; -2.400758277161838;
             -2.549732539343734; 4.374664141464968; 2.938163982698783 |] in
  let d = [| 0.007784695709041462; 0.3224671290700398; 2.445134137142996;
             3.754408661907416 |] in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
    +. c.(5)
    |> fun num ->
    num /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5))
    *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q) +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q
      +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end

(** Raw generator state, for checkpointing. *)
let state t = t.state

let set_state t v = t.state <- v

(** Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = Float.max (float t) 1e-300 in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
