(** Public façade of the OP-PIC DSL, mirroring the paper's C++ API
    names ([opp_decl_set], [opp_par_loop], [opp_particle_move], ...).

    {[
      let ctx = Opp.init () in
      let cells = Opp.decl_set ctx ~name:"cells" ncells in
      let nodes = Opp.decl_set ctx ~name:"nodes" nnodes in
      let c2n = Opp.decl_map ctx ~name:"c2n" ~from:cells ~to_:nodes ~arity:4 (Some data) in
      let part = Opp.decl_particle_set ctx ~name:"ions" cells in
      ...
      Opp.par_loop ~name:"deposit" kernel part Opp.all
        [ Opp.arg_dat lc Opp.read;
          Opp.arg_dat_p2c_i charge ~idx:0 ~map:c2n ~p2c Opp.inc ]
    ]} *)

include Types

type arg = Arg.t
type view = View.t

let init () = make_ctx ()

(* Re-exported declaration API. *)
let decl_set = decl_set
let decl_particle_set = decl_particle_set
let decl_map = decl_map
let decl_dat = decl_dat

(* Access modes. *)
let read = Read
let write = Write
let inc = Inc
let rw = Rw

(* Argument constructors. *)
let arg_dat = Arg.dat
let arg_dat_i = Arg.dat_i
let arg_dat_p2c = Arg.dat_p2c
let arg_dat_p2c_i = Arg.dat_p2c_i
let arg_gbl = Arg.gbl

(* Iteration selectors (OPP_ITERATE_ALL / OPP_ITERATE_INJECTED, plus
   the owned-only core range used by the distributed backend). *)
let all = Seq.Iterate_all
let core = Seq.Iterate_core
let injected = Seq.Iterate_injected

(* Sequential execution (the reference backend). *)
let par_loop = Seq.par_loop
let particle_move = Seq.particle_move

(* Particle lifecycle. *)
let inject = Particle.inject
let reset_injected = Particle.reset_injected
let sort_by_cell = Particle.sort_by_cell

(* View accessors, for writing kernels. *)
let get = View.get
let set = View.set
let vinc = View.inc
