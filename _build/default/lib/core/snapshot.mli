(** Generic binary snapshots of a DSL context: every set's live size,
    every dat's live values, every map's live entries, keyed by name.
    Application-level extras (RNG streams, counters) layer on top, as
    in [Fempic.Checkpoint]. *)

exception Corrupt of string

val save : Types.ctx -> string -> unit

val load : Types.ctx -> string -> unit
(** Restore into a context with the same declarations (matched by
    name); particle sets are resized to the snapshot's populations.
    Raises {!Corrupt} on any mismatch. *)
