(** Generic binary snapshots of a DSL context: every set's live size,
    every dat's live values, every map's live entries, keyed by name.

    This is the library-level state persistence the paper's artifact
    gets from HDF5: any application declared through the API can be
    dumped and restored without bespoke code (application-level
    extras — RNG streams, counters — layer on top, as in
    {!Fempic.Checkpoint}). The format is endian-fixed big-endian. *)

open Types

exception Corrupt of string

let magic = 0x4F5050534E415053L (* "OPPSNAPS" *)

let write_i64 oc v =
  for byte = 7 downto 0 do
    output_byte oc (Int64.to_int (Int64.shift_right_logical v (byte * 8)) land 0xff)
  done

let rec read_i64_aux ic acc = function
  | 0 -> acc
  | k ->
      read_i64_aux ic (Int64.logor (Int64.shift_left acc 8) (Int64.of_int (input_byte ic))) (k - 1)

let read_i64 ic = try read_i64_aux ic 0L 8 with End_of_file -> raise (Corrupt "truncated file")
let write_int oc v = write_i64 oc (Int64.of_int v)
let read_int ic = Int64.to_int (read_i64 ic)

let write_string oc s =
  write_int oc (String.length s);
  output_string oc s

let read_string ic =
  let n = read_int ic in
  if n < 0 || n > 4096 then raise (Corrupt "bad string length");
  try really_input_string ic n with End_of_file -> raise (Corrupt "truncated string")

(* sorted by name so the layout is independent of declaration order *)
let sorted_by name_of entities = List.sort (fun a b -> compare (name_of a) (name_of b)) entities

(** Write every set, dat and map of [ctx] to [path]. *)
let save (ctx : ctx) path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      write_i64 oc magic;
      let sets = sorted_by (fun s -> s.s_name) ctx.c_sets in
      write_int oc (List.length sets);
      List.iter
        (fun s ->
          write_string oc s.s_name;
          write_int oc s.s_size)
        sets;
      let dats = sorted_by (fun d -> d.d_name) ctx.c_dats in
      write_int oc (List.length dats);
      List.iter
        (fun d ->
          write_string oc d.d_name;
          let n = d.d_set.s_size * d.d_dim in
          write_int oc n;
          for i = 0 to n - 1 do
            write_i64 oc (Int64.bits_of_float d.d_data.(i))
          done)
        dats;
      let maps = sorted_by (fun m -> m.m_name) ctx.c_maps in
      write_int oc (List.length maps);
      List.iter
        (fun m ->
          write_string oc m.m_name;
          let n = m.m_from.s_size * m.m_arity in
          write_int oc n;
          for i = 0 to n - 1 do
            write_int oc m.m_data.(i)
          done)
        maps)

(** Restore a snapshot into a context with the same declarations
    (matched by name). Particle sets are resized to the snapshot's
    populations. Raises [Corrupt] on any mismatch. *)
let load (ctx : ctx) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      if read_i64 ic <> magic then raise (Corrupt "bad magic");
      let find_set name =
        match List.find_opt (fun s -> s.s_name = name) ctx.c_sets with
        | Some s -> s
        | None -> raise (Corrupt ("unknown set " ^ name))
      in
      let nsets = read_int ic in
      for _ = 1 to nsets do
        let name = read_string ic in
        let size = read_int ic in
        let s = find_set name in
        if is_particle_set s then begin
          (* resize the population to the snapshot's *)
          if size > s.s_size then ignore (Particle.inject s (size - s.s_size))
          else if size < s.s_size then begin
            let dead = Array.make s.s_size false in
            for p = size to s.s_size - 1 do
              dead.(p) <- true
            done;
            ignore (Particle.remove_flagged s dead)
          end;
          Particle.reset_injected s
        end
        else if size <> s.s_size then
          raise (Corrupt (Printf.sprintf "mesh set %s: size %d <> %d" name size s.s_size))
      done;
      let ndats = read_int ic in
      for _ = 1 to ndats do
        let name = read_string ic in
        let n = read_int ic in
        match List.find_opt (fun d -> d.d_name = name) ctx.c_dats with
        | None -> raise (Corrupt ("unknown dat " ^ name))
        | Some d ->
            if n <> d.d_set.s_size * d.d_dim then
              raise (Corrupt (Printf.sprintf "dat %s: size mismatch" name));
            for i = 0 to n - 1 do
              d.d_data.(i) <- Int64.float_of_bits (read_i64 ic)
            done
      done;
      let nmaps = read_int ic in
      for _ = 1 to nmaps do
        let name = read_string ic in
        let n = read_int ic in
        match List.find_opt (fun m -> m.m_name = name) ctx.c_maps with
        | None -> raise (Corrupt ("unknown map " ^ name))
        | Some m ->
            if n <> m.m_from.s_size * m.m_arity then
              raise (Corrupt (Printf.sprintf "map %s: size mismatch" name));
            for i = 0 to n - 1 do
              m.m_data.(i) <- read_int ic
            done
      done)
