(** Deterministic, seedable splitmix64 RNG.

    Simulations must be reproducible across backends and partitionings
    (the validation tests compare seq / threads / GPU-sim / distributed
    runs), so all stochastic choices go through explicitly threaded
    states rather than the global [Random]. *)

type t

val create : int -> t
(** A fresh stream; equal seeds give equal streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n); raises [Invalid_argument] when
    [n <= 0]. *)

val gaussian : t -> float
(** Standard normal (Box-Muller). *)

val normal_quantile : float -> float
(** Inverse standard normal CDF for p in (0,1) (Acklam's
    approximation, |relative error| < 1.15e-9); used by quiet-start
    velocity loading. *)

val state : t -> int64
(** Raw generator state, for checkpointing. *)

val set_state : t -> int64 -> unit
(** Restore a checkpointed state. *)
