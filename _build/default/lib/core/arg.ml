(** Argument descriptors for [par_loop] / [particle_move], mirroring
    [opp_arg_dat] / [opp_arg_gbl] of the paper's API.

    An argument is a dat plus how it is reached from the iteration set:
    - directly ([map = None], [p2c = None]);
    - through one mesh map ([map = Some m]), selecting slot [idx];
    - for particle loops, through the particle-to-cell map
      ([p2c = Some p2c]), optionally composed with a mesh map for the
      double indirection of particle-to-node scatters. *)

open Types

type t =
  | Arg_dat of {
      dat : dat;
      idx : int;  (** slot within the map's arity; ignored if [map=None] *)
      map : map option;
      p2c : map option;
      acc : access;
    }
  | Arg_gbl of { buf : float array; acc : access }

(** Directly accessed dat (iteration set = dat's set, or reached via p2c
    for a particle loop when the dat lives on cells). *)
let dat d acc = Arg_dat { dat = d; idx = 0; map = None; p2c = None; acc }

(** Dat accessed through mesh map [m], slot [idx]. *)
let dat_i d ~idx ~map acc = Arg_dat { dat = d; idx; map = Some map; p2c = None; acc }

(** Cell dat accessed from a particle through [p2c]. *)
let dat_p2c d ~p2c acc = Arg_dat { dat = d; idx = 0; map = None; p2c = Some p2c; acc }

(** Double indirection: particle -> cell ([p2c]) -> mesh element
    ([map], slot [idx]); e.g. charge deposit from particles to nodes. *)
let dat_p2c_i d ~idx ~map ~p2c acc =
  Arg_dat { dat = d; idx; map = Some map; p2c = Some p2c; acc }

(** Global argument (reduction buffer or read-only constants). *)
let gbl buf acc = Arg_gbl { buf; acc }

let access = function Arg_dat a -> a.acc | Arg_gbl g -> g.acc
let view_dim = function Arg_dat a -> a.dat.d_dim | Arg_gbl g -> Array.length g.buf

(** Validate an argument against the loop's iteration set; raises
    [Invalid_argument] describing the first inconsistency. *)
let validate ~iter_set arg =
  match arg with
  | Arg_gbl _ -> ()
  | Arg_dat a -> (
      let fail msg = invalid_arg (Printf.sprintf "arg %s: %s" a.dat.d_name msg) in
      (match a.map with
      | Some m ->
          if a.idx < 0 || a.idx >= m.m_arity then
            fail (Printf.sprintf "map index %d out of arity %d" a.idx m.m_arity);
          if m.m_to != a.dat.d_set then fail "map target set differs from dat's set"
      | None -> ());
      match (a.p2c, a.map) with
      | Some p2c, _ ->
          if p2c.m_from != iter_set then fail "p2c map source is not the iteration set";
          if not (is_particle_set iter_set) then fail "p2c access from a mesh loop";
          (match a.map with
          | Some m ->
              if m.m_from != p2c.m_to then fail "mesh map source differs from p2c target"
          | None ->
              if a.dat.d_set != p2c.m_to then fail "dat not on the p2c target set")
      | None, Some m ->
          if m.m_from != iter_set then fail "map source is not the iteration set"
      | None, None ->
          if a.dat.d_set != iter_set then
            fail
              (Printf.sprintf "direct access but dat lives on %s, loop over %s"
                 a.dat.d_set.s_name iter_set.s_name))

(** Base offset into the dat's storage for iteration element [e]. *)
let offset arg e =
  match arg with
  | Arg_gbl _ -> 0
  | Arg_dat a -> (
      let elem = match a.p2c with None -> e | Some p2c -> p2c.m_data.(e) in
      match a.map with
      | None -> elem * a.dat.d_dim
      | Some m -> m.m_data.((elem * m.m_arity) + a.idx) * a.dat.d_dim)

(** Estimated bytes touched per iteration element, for the performance
    ledger: dat values as 8-byte doubles, map entries as 4-byte ints
    (matching the C implementation the model mimics). *)
let bytes_per_elem arg =
  match arg with
  | Arg_gbl _ -> 0
  | Arg_dat a ->
      let data_bytes = 8 * a.dat.d_dim in
      let data_bytes = if a.acc = Rw || a.acc = Inc then 2 * data_bytes else data_bytes in
      let map_bytes = (match a.map with None -> 0 | Some _ -> 4) in
      let p2c_bytes = (match a.p2c with None -> 0 | Some _ -> 4) in
      data_bytes + map_bytes + p2c_bytes
