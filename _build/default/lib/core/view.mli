(** A kernel's window onto one argument of a parallel loop.

    Backends re-point [data]/[base] per iteration element, so user
    kernels are written once against this interface and reused by
    every parallelization — the paper's separation of the science
    source from its parallel implementation. *)

type t = {
  mutable data : float array;  (** backing storage (backends may redirect it) *)
  mutable base : int;  (** offset of the current element's first value *)
  dim : int;  (** values per element *)
}

val make : int -> t
(** [make dim] is an unbound view (backends bind it before use). *)

val of_array : ?base:int -> float array -> int -> t
(** [of_array data dim] views [data] starting at [base] (default 0). *)

val get : t -> int -> float
(** [get v i] reads component [i] of the current element. *)

val set : t -> int -> float -> unit
(** [set v i x] writes component [i]. Use only on WRITE/RW arguments. *)

val inc : t -> int -> float -> unit
(** [inc v i x] adds [x] to component [i]. The only legal update on an
    INC argument: backends intercept it for race-free accumulation. *)

val to_array : t -> float array
(** Copy of the [dim] values under the view. *)

val fill : t -> float -> unit
(** Set every component of the current element. *)

val blit_from : t -> float array -> unit
(** Write [dim] values from the array into the current element. *)
