(** Backend dispatch.

    An application declares its solver once against this interface; a
    runner binds the loops to a parallelization (sequential reference,
    Domains threads, simulated SIMT device, simulated MPI rank), which
    is the paper's separation of science source from parallel
    implementation. *)

type t = {
  r_name : string;
  r_par_loop :
    string (* kernel name *) ->
    float (* flops per element *) ->
    Seq.kernel ->
    Types.set ->
    Seq.iterate ->
    Arg.t list ->
    unit;
  r_particle_move :
    string ->
    float ->
    (int -> int) option (* direct-hop locator *) ->
    Seq.move_kernel ->
    Types.set ->
    Types.map (* p2c *) ->
    Arg.t list ->
    Seq.move_result;
}

let par_loop r ~name ?(flops_per_elem = 0.0) kernel set iterate args =
  r.r_par_loop name flops_per_elem kernel set iterate args

let particle_move r ~name ?(flops_per_elem = 0.0) ?dh kernel set ~p2c args =
  r.r_particle_move name flops_per_elem dh kernel set p2c args

(** The sequential reference runner, recording into [profile]. *)
let seq ?(profile = Profile.global) () =
  {
    r_name = "seq";
    r_par_loop =
      (fun name flops_per_elem kernel set iterate args ->
        Seq.par_loop ~profile ~flops_per_elem ~name kernel set iterate args);
    r_particle_move =
      (fun name flops_per_elem dh kernel set p2c args ->
        Seq.particle_move ~profile ~flops_per_elem ?dh ~name kernel set ~p2c args);
  }
