(** The particle-pusher family of paper section 2.3: besides the
    de-facto Boris rotation ({!Cabana_phys.boris}), PIC codes use
    Velocity-Verlet (second order with zero magnetic field), and the
    Vay and Higuera-Cary integrators. All are given here in their
    non-relativistic (gamma = 1) form, matching the rest of this
    implementation. In this limit all three rotational pushers become
    exact rotations in a pure magnetic field (Vay's well-known energy
    non-conservation is a relativistic gamma-update artifact that
    vanishes at gamma = 1); the tests pin down exactly that, plus
    second-order convergence to the analytic cyclotron orbit. *)

type t = Boris | Vay | Higuera_cary | Velocity_verlet

let to_string = function
  | Boris -> "boris"
  | Vay -> "vay"
  | Higuera_cary -> "higuera-cary"
  | Velocity_verlet -> "velocity-verlet"

let of_string = function
  | "boris" -> Some Boris
  | "vay" -> Some Vay
  | "higuera-cary" | "hc" -> Some Higuera_cary
  | "velocity-verlet" | "vv" -> Some Velocity_verlet
  | _ -> None

let cross ax ay az bx by bz = ((ay *. bz) -. (az *. by), (az *. bx) -. (ax *. bz), (ax *. by) -. (ay *. bx))

(* Vay (2008), gamma = 1: a symmetric splitting where the half
   magnetic rotation uses the mid-step velocity. *)
let vay ~qmdt2 ~ex ~ey ~ez ~bx ~by ~bz (v : float array) =
  (* u- : full E half-kick plus half of the OLD velocity's magnetic force *)
  let cx, cy, cz = cross v.(0) v.(1) v.(2) bx by bz in
  let umx = v.(0) +. (qmdt2 *. (ex +. cx)) in
  let umy = v.(1) +. (qmdt2 *. (ey +. cy)) in
  let umz = v.(2) +. (qmdt2 *. (ez +. cz)) in
  (* u' : second E half-kick *)
  let upx = umx +. (qmdt2 *. ex) in
  let upy = umy +. (qmdt2 *. ey) in
  let upz = umz +. (qmdt2 *. ez) in
  (* implicit half rotation solved in closed form *)
  let tx = qmdt2 *. bx and ty = qmdt2 *. by and tz = qmdt2 *. bz in
  let t2 = (tx *. tx) +. (ty *. ty) +. (tz *. tz) in
  let udott = (upx *. tx) +. (upy *. ty) +. (upz *. tz) in
  let cx, cy, cz = cross upx upy upz tx ty tz in
  let inv = 1.0 /. (1.0 +. t2) in
  v.(0) <- (upx +. (udott *. tx) +. cx) *. inv;
  v.(1) <- (upy +. (udott *. ty) +. cy) *. inv;
  v.(2) <- (upz +. (udott *. tz) +. cz) *. inv

(* Higuera & Cary (2017), gamma = 1: identical structure to Boris but
   the rotation vector is built from the mid-step gamma; with gamma=1
   the rotation becomes the exact Cayley form below. *)
let higuera_cary ~qmdt2 ~ex ~ey ~ez ~bx ~by ~bz (v : float array) =
  let umx = v.(0) +. (qmdt2 *. ex) in
  let umy = v.(1) +. (qmdt2 *. ey) in
  let umz = v.(2) +. (qmdt2 *. ez) in
  let tx = qmdt2 *. bx and ty = qmdt2 *. by and tz = qmdt2 *. bz in
  let t2 = (tx *. tx) +. (ty *. ty) +. (tz *. tz) in
  let udott = (umx *. tx) +. (umy *. ty) +. (umz *. tz) in
  let cx, cy, cz = cross umx umy umz tx ty tz in
  let inv = 1.0 /. (1.0 +. t2) in
  (* exact Cayley rotation of u- (norm-preserving) *)
  let upx = ((umx *. (1.0 -. t2)) +. (2.0 *. ((udott *. tx) +. cx))) *. inv in
  let upy = ((umy *. (1.0 -. t2)) +. (2.0 *. ((udott *. ty) +. cy))) *. inv in
  let upz = ((umz *. (1.0 -. t2)) +. (2.0 *. ((udott *. tz) +. cz))) *. inv in
  v.(0) <- upx +. (qmdt2 *. ex);
  v.(1) <- upy +. (qmdt2 *. ey);
  v.(2) <- upz +. (qmdt2 *. ez)

(* Velocity-Verlet: the B-free leapfrog kick (second-order for
   electrostatic problems, as the paper notes). B is ignored. *)
let velocity_verlet ~qmdt2 ~ex ~ey ~ez ~bx:_ ~by:_ ~bz:_ (v : float array) =
  v.(0) <- v.(0) +. (2.0 *. qmdt2 *. ex);
  v.(1) <- v.(1) +. (2.0 *. qmdt2 *. ey);
  v.(2) <- v.(2) +. (2.0 *. qmdt2 *. ez)

(** One velocity update with the chosen pusher. [qmdt2] = (q/m) dt/2;
    [v] is updated in place. *)
let push t ~qmdt2 ~ex ~ey ~ez ~bx ~by ~bz v =
  match t with
  | Boris -> Cabana_phys.boris ~qmdt2 ~ex ~ey ~ez ~bx ~by ~bz v
  | Vay -> vay ~qmdt2 ~ex ~ey ~ez ~bx ~by ~bz v
  | Higuera_cary -> higuera_cary ~qmdt2 ~ex ~ey ~ez ~bx ~by ~bz v
  | Velocity_verlet -> velocity_verlet ~qmdt2 ~ex ~ey ~ez ~bx ~by ~bz v

let all = [ Boris; Vay; Higuera_cary; Velocity_verlet ]
