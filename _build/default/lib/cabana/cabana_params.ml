(** Configuration for the CabanaPIC two-stream benchmark.

    VPIC-style normalised units: c = 1, eps0 = mu0 = 1, electron charge
    q = -1, mass m = 1, reference density n0 = 1 (so the plasma
    frequency is 1). The paper's regimes use 750 / 1500 / 3000
    particles per cell on a 96k-cell cuboid; defaults here keep the
    particles-per-cell knob and scale the mesh down. *)

type t = {
  nx : int;
  ny : int;
  nz : int;
  ppc : int;  (** particles per cell (both streams together) *)
  v0 : float;  (** stream drift speed along z, in units of c *)
  perturb : float;  (** relative velocity perturbation seeding the instability *)
  mode : int;  (** perturbation wavenumber in box lengths *)
  cfl : float;  (** fraction of the light Courant limit *)
  lx : float;
  ly : float;
  lz : float;
  seed : int;
}

let default =
  {
    nx = 4;
    ny = 4;
    nz = 32;
    ppc = 32;
    v0 = 0.2;
    perturb = 0.01;
    mode = 1;
    cfl = 0.7;
    lx = 0.5;
    ly = 0.5;
    (* k v0 = 0.5 wp at mode 1: inside the two-stream unstable band *)
    lz = 4.0 *. Float.pi *. 0.2;
    seed = 99;
  }

let qe = -1.0
let me = 1.0
let n0 = 1.0

let dx t = t.lx /. float_of_int t.nx
let dy t = t.ly /. float_of_int t.ny
let dz t = t.lz /. float_of_int t.nz

(** Time step at the configured fraction of the 3-D light Courant
    limit. *)
let dt t =
  let inv2 d = 1.0 /. (d *. d) in
  t.cfl /. sqrt (inv2 (dx t) +. inv2 (dy t) +. inv2 (dz t))

let ncells t = t.nx * t.ny * t.nz
let nparticles t = ncells t * t.ppc

(** Macro-particle weight for density [n0] with [ppc] particles per
    cell. *)
let weight t = n0 *. dx t *. dy t *. dz t /. float_of_int t.ppc
