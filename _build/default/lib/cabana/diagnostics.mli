(** Physics diagnostics for CabanaPIC: field-energy histories, measured
    exponential growth rates, and the cold symmetric two-stream
    dispersion relation to compare against (wp = 1 in the simulation's
    normalised units). *)

type history

val history : dt:float -> history
val record : history -> step:int -> e_field:float -> unit

val growth_rate : history -> from_step:int -> to_step:int -> float option
(** Amplitude growth rate gamma from a least-squares fit of
    ln(E-field energy) over the window (energy grows at 2 gamma);
    None with fewer than 3 usable samples. *)

val theoretical_growth_rate : kv:float -> float option
(** Unstable root gamma/wp at normalised wavenumber [kv] = k v0 / wp;
    None outside the unstable band 0 < kv < 1. The maximum is
    wp/(2 sqrt 2) at kv = sqrt(3/8). *)

val seeded_kv : Cabana_params.t -> float
(** Normalised wavenumber of the configuration's seeded mode. *)
