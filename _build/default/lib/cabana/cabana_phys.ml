(** The shared numerics of CabanaPIC.

    Both the OP-PIC (unstructured DSL) implementation and the
    structured-mesh reference baseline call these routines, so the two
    codes execute identical floating-point operations — this is what
    makes the paper's validation (field energies agreeing to machine
    precision, section 4) reproducible here.

    Field layout per cell (Yee staggering, cell-owned components):
    Ex on the x-edge at (i+1/2, j, k), Ey at (i, j+1/2, k), Ez at
    (i, j, k+1/2); Bx on the x-face at (i, j+1/2, k+1/2), and so on.

    Interpolator layout (18 doubles per cell, as in VPIC/CabanaPIC):
    {v
    0..3   ex0  dexdy  dexdz  d2exdydz
    4..7   ey0  deydz  deydx  d2eydzdx
    8..11  ez0  dezdx  dezdy  d2ezdxdy
    12..13 cbx0 dcbxdx
    14..15 cby0 dcbydy
    16..17 cbz0 dcbzdz
    v} *)

(* Neighbour slots used by the interpolator. *)
type nb = Own | Px | Py | Pz | Pyz | Pzx | Pxy

(** Build the 18 interpolation coefficients. [get_e slot comp] /
    [get_b slot comp] read field component [comp] of the neighbouring
    cell [slot]; [set i v] writes coefficient [i]. *)
let build_interpolator ~get_e ~get_b ~set =
  (* Ex lives on the 4 x-edges of the cell: bilinear in (y, z) *)
  let quarter = 0.25 in
  let e1 = get_e Own 0 and e2 = get_e Py 0 and e3 = get_e Pz 0 and e4 = get_e Pyz 0 in
  set 0 (quarter *. (e1 +. e2 +. e3 +. e4));
  set 1 (quarter *. (e2 +. e4 -. e1 -. e3));
  set 2 (quarter *. (e3 +. e4 -. e1 -. e2));
  set 3 (quarter *. (e1 +. e4 -. e2 -. e3));
  let e1 = get_e Own 1 and e2 = get_e Pz 1 and e3 = get_e Px 1 and e4 = get_e Pzx 1 in
  set 4 (quarter *. (e1 +. e2 +. e3 +. e4));
  set 5 (quarter *. (e2 +. e4 -. e1 -. e3));
  set 6 (quarter *. (e3 +. e4 -. e1 -. e2));
  set 7 (quarter *. (e1 +. e4 -. e2 -. e3));
  let e1 = get_e Own 2 and e2 = get_e Px 2 and e3 = get_e Py 2 and e4 = get_e Pxy 2 in
  set 8 (quarter *. (e1 +. e2 +. e3 +. e4));
  set 9 (quarter *. (e2 +. e4 -. e1 -. e3));
  set 10 (quarter *. (e3 +. e4 -. e1 -. e2));
  set 11 (quarter *. (e1 +. e4 -. e2 -. e3));
  (* B components: linear along their own axis *)
  let b1 = get_b Own 0 and b2 = get_b Px 0 in
  set 12 (0.5 *. (b1 +. b2));
  set 13 (0.5 *. (b2 -. b1));
  let b1 = get_b Own 1 and b2 = get_b Py 1 in
  set 14 (0.5 *. (b1 +. b2));
  set 15 (0.5 *. (b2 -. b1));
  let b1 = get_b Own 2 and b2 = get_b Pz 2 in
  set 16 (0.5 *. (b1 +. b2));
  set 17 (0.5 *. (b2 -. b1))

(** Fields at normalised cell offsets (ox, oy, oz) in [-1,1]^3, from an
    interpolator reader [g i]. Returns (ex, ey, ez, bx, by, bz). *)
let eval_fields ~g ~ox ~oy ~oz =
  let ex = g 0 +. (oy *. g 1) +. (oz *. g 2) +. (oy *. oz *. g 3) in
  let ey = g 4 +. (oz *. g 5) +. (ox *. g 6) +. (oz *. ox *. g 7) in
  let ez = g 8 +. (ox *. g 9) +. (oy *. g 10) +. (ox *. oy *. g 11) in
  let bx = g 12 +. (ox *. g 13) in
  let by = g 14 +. (oy *. g 15) in
  let bz = g 16 +. (oz *. g 17) in
  (ex, ey, ez, bx, by, bz)

(** Non-relativistic Boris rotation. [qmdt2] = (q/m) dt/2. Velocity
    buffer [v] (3) is updated in place. *)
let boris ~qmdt2 ~ex ~ey ~ez ~bx ~by ~bz (v : float array) =
  let vmx = v.(0) +. (qmdt2 *. ex) in
  let vmy = v.(1) +. (qmdt2 *. ey) in
  let vmz = v.(2) +. (qmdt2 *. ez) in
  let tx = qmdt2 *. bx and ty = qmdt2 *. by and tz = qmdt2 *. bz in
  let t2 = (tx *. tx) +. (ty *. ty) +. (tz *. tz) in
  let sx = 2.0 *. tx /. (1.0 +. t2) in
  let sy = 2.0 *. ty /. (1.0 +. t2) in
  let sz = 2.0 *. tz /. (1.0 +. t2) in
  let vpx = vmx +. ((vmy *. tz) -. (vmz *. ty)) in
  let vpy = vmy +. ((vmz *. tx) -. (vmx *. tz)) in
  let vpz = vmz +. ((vmx *. ty) -. (vmy *. tx)) in
  let vfx = vmx +. ((vpy *. sz) -. (vpz *. sy)) in
  let vfy = vmy +. ((vpz *. sx) -. (vpx *. sz)) in
  let vfz = vmz +. ((vpx *. sy) -. (vpy *. sx)) in
  v.(0) <- vfx +. (qmdt2 *. ex);
  v.(1) <- vfy +. (qmdt2 *. ey);
  v.(2) <- vfz +. (qmdt2 *. ez)

(** One streaming step within a cell, in normalised coordinates where
    the cell spans [-1,1] on each axis. [o] is the particle offset,
    [r] the remaining displacement; both are updated in place and the
    displacement traversed this step is written to [trav]. Returns -1
    when the particle stops inside the cell, otherwise the exit face
    (0:-x 1:+x 2:-y 3:+y 4:-z 5:+z, matching
    {!Opp_mesh.Hex_mesh.face_neighbours}). *)
let stream (o : float array) (r : float array) (trav : float array) =
  let time_to_face d =
    if r.(d) > 0.0 then (1.0 -. o.(d)) /. r.(d)
    else if r.(d) < 0.0 then (-1.0 -. o.(d)) /. r.(d)
    else infinity
  in
  let tx = time_to_face 0 and ty = time_to_face 1 and tz = time_to_face 2 in
  let tmin = Float.min tx (Float.min ty tz) in
  if tmin >= 1.0 then begin
    for d = 0 to 2 do
      trav.(d) <- r.(d);
      o.(d) <- o.(d) +. r.(d);
      r.(d) <- 0.0
    done;
    -1
  end
  else begin
    let tmin = Float.max tmin 0.0 in
    let axis = if tx <= ty && tx <= tz then 0 else if ty <= tz then 1 else 2 in
    for d = 0 to 2 do
      trav.(d) <- tmin *. r.(d);
      o.(d) <- o.(d) +. trav.(d);
      r.(d) <- r.(d) -. trav.(d)
    done;
    let exiting_plus = r.(axis) > 0.0 in
    (* enter the neighbour at the opposite face *)
    o.(axis) <- (if exiting_plus then -1.0 else 1.0);
    (2 * axis) + if exiting_plus then 1 else 0
  end

(** True when the remaining displacement is negligible (ends the
    walk even after a face crossing). *)
let spent (r : float array) =
  Float.abs r.(0) < 1e-15 && Float.abs r.(1) < 1e-15 && Float.abs r.(2) < 1e-15

(** Curl of E at the B (face) locations, forward differences. Getter
    [ge slot comp] with slots 0:own 1:+x 2:+y 3:+z. *)
let curl_e_forward ~ge ~dx ~dy ~dz =
  let cx = ((ge 2 2 -. ge 0 2) /. dy) -. ((ge 3 1 -. ge 0 1) /. dz) in
  let cy = ((ge 3 0 -. ge 0 0) /. dz) -. ((ge 1 2 -. ge 0 2) /. dx) in
  let cz = ((ge 1 1 -. ge 0 1) /. dx) -. ((ge 2 0 -. ge 0 0) /. dy) in
  (cx, cy, cz)

(** Curl of B at the E (edge) locations, backward differences. Getter
    [gb slot comp] with slots 0:own 1:-x 2:-y 3:-z. *)
let curl_b_backward ~gb ~dx ~dy ~dz =
  let cx = ((gb 0 2 -. gb 2 2) /. dy) -. ((gb 0 1 -. gb 3 1) /. dz) in
  let cy = ((gb 0 0 -. gb 3 0) /. dz) -. ((gb 0 2 -. gb 1 2) /. dx) in
  let cz = ((gb 0 1 -. gb 1 1) /. dx) -. ((gb 0 0 -. gb 2 0) /. dy) in
  (cx, cy, cz)

(** Initial state of one particle of the two-stream setup: particle
    [idx] within cell [c] whose z-extent starts at [z0] (thickness
    [dz]). Returns (offsets, velocity). Even indices stream +z, odd
    -z; a sinusoidal z-velocity perturbation seeds mode [mode]. *)
let two_stream_particle rng ~(prm : Cabana_params.t) ~idx ~z0 ~dz =
  let ox = (2.0 *. Opp_core.Rng.float rng) -. 1.0 in
  let oy = (2.0 *. Opp_core.Rng.float rng) -. 1.0 in
  let oz = (2.0 *. Opp_core.Rng.float rng) -. 1.0 in
  let z = z0 +. ((oz +. 1.0) /. 2.0 *. dz) in
  let sign = if idx mod 2 = 0 then 1.0 else -1.0 in
  let k = 2.0 *. Float.pi *. float_of_int prm.Cabana_params.mode /. prm.Cabana_params.lz in
  let vz =
    sign *. prm.Cabana_params.v0
    *. (1.0 +. (prm.Cabana_params.perturb *. sin (k *. z)))
  in
  ([| ox; oy; oz |], [| 0.0; 0.0; vz |])
