(** Configuration for the CabanaPIC two-stream benchmark, in VPIC-style
    normalised units: c = 1, eps0 = mu0 = 1, electron q = -1, m = 1,
    n0 = 1 (so the plasma frequency is 1). *)

type t = {
  nx : int;
  ny : int;
  nz : int;
  ppc : int;  (** particles per cell, both streams together *)
  v0 : float;  (** stream drift along z, units of c *)
  perturb : float;  (** relative velocity perturbation *)
  mode : int;  (** seeded wavenumber in box lengths *)
  cfl : float;  (** fraction of the light Courant limit *)
  lx : float;
  ly : float;
  lz : float;
  seed : int;
}

val default : t

val qe : float
val me : float
val n0 : float

val dx : t -> float
val dy : t -> float
val dz : t -> float

val dt : t -> float
(** Time step at the configured Courant fraction. *)

val ncells : t -> int
val nparticles : t -> int

val weight : t -> float
(** Macro-particle weight giving density [n0]. *)
