lib/cabana/cabana_params.mli:
