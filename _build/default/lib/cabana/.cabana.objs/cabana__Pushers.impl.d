lib/cabana/pushers.ml: Array Cabana_phys
