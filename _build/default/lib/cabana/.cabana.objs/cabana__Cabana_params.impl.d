lib/cabana/cabana_params.ml: Float
