lib/cabana/diagnostics.ml: Cabana_params Float List
