lib/cabana/cabana_phys.mli: Cabana_params Opp_core
