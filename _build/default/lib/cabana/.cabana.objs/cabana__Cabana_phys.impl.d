lib/cabana/cabana_phys.ml: Array Cabana_params Float Opp_core
