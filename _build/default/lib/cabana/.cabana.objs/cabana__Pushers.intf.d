lib/cabana/pushers.mli:
