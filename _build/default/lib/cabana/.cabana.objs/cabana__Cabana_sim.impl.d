lib/cabana/cabana_sim.ml: Array Cabana_params Cabana_phys Fun Opp Opp_core Opp_mesh Profile Rng Runner Seq View
