lib/cabana/diagnostics.mli: Cabana_params
