(** Physics diagnostics for CabanaPIC: energy histories and the
    two-stream growth rate, with the cold-beam dispersion relation to
    compare against.

    The cold symmetric two-stream dispersion relation is

      1 = (wp^2/2) [ 1/(w - k v0)^2 + 1/(w + k v0)^2 ]

    whose unstable root (purely imaginary w = i gamma for this
    symmetric case) exists for k v0 < wp. In the simulation's
    normalised units wp = 1. *)

type history = {
  mutable steps : int list;  (** reversed *)
  mutable e_field : float list;
  dt : float;
}

let history ~dt = { steps = []; e_field = []; dt }

let record h ~step ~e_field =
  h.steps <- step :: h.steps;
  h.e_field <- e_field :: h.e_field

(** Least-squares slope of ln(E-field energy) over the recorded window
    between [from_step] and [to_step]; the field-energy growth rate is
    2 gamma (energy goes as the amplitude squared), so gamma is half
    the fitted slope, returned per unit time. *)
let growth_rate h ~from_step ~to_step =
  let pairs =
    List.filter
      (fun (s, e) -> s >= from_step && s <= to_step && e > 0.0)
      (List.combine (List.rev h.steps) (List.rev h.e_field))
  in
  let n = float_of_int (List.length pairs) in
  if List.length pairs < 3 then None
  else begin
    let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
    List.iter
      (fun (s, e) ->
        let x = float_of_int s *. h.dt in
        let y = log e in
        sx := !sx +. x;
        sy := !sy +. y;
        sxx := !sxx +. (x *. x);
        sxy := !sxy +. (x *. y))
      pairs;
    let denom = (n *. !sxx) -. (!sx *. !sx) in
    if Float.abs denom < 1e-300 then None
    else Some (((n *. !sxy) -. (!sx *. !sy)) /. denom /. 2.0)
  end

(** Unstable growth rate gamma/wp of the cold symmetric two-stream
    instability at normalised wavenumber [kv] = k v0 / wp, found by
    bisection on the dispersion function along the imaginary axis;
    None for k v0 >= wp (stable). *)
let theoretical_growth_rate ~kv =
  if kv >= 1.0 || kv <= 0.0 then None
  else begin
    (* with w = i g: D(g) = 1 - 1/2 [ 1/(ig - kv)^2 + 1/(ig + kv)^2 ]
       = 1 + (g^2 - kv^2) / (g^2 + kv^2)^2  ... real-valued *)
    let d g =
      let g2 = g *. g and k2 = kv *. kv in
      1.0 +. ((g2 -. k2) /. ((g2 +. k2) ** 2.0))
    in
    (* D(0) = 1 - 1/kv^2 < 0 for kv < 1; D grows to > 0 as g grows *)
    let lo = ref 0.0 and hi = ref 2.0 in
    if d !lo >= 0.0 then None
    else begin
      for _ = 1 to 80 do
        let mid = 0.5 *. (!lo +. !hi) in
        if d mid < 0.0 then lo := mid else hi := mid
      done;
      Some (0.5 *. (!lo +. !hi))
    end
  end

(** The normalised wavenumber of the seeded mode of a configuration. *)
let seeded_kv (prm : Cabana_params.t) =
  2.0 *. Float.pi *. float_of_int prm.Cabana_params.mode /. prm.Cabana_params.lz
  *. prm.Cabana_params.v0
