(** The particle-pusher family of paper section 2.3 in non-relativistic
    (gamma = 1) form: Boris (the de-facto standard), Vay, Higuera-Cary,
    and Velocity-Verlet (second order only with zero magnetic field).
    In this limit the three rotational pushers are exact rotations in a
    pure magnetic field; the tests pin that down along with
    second-order cyclotron convergence. *)

type t = Boris | Vay | Higuera_cary | Velocity_verlet

val to_string : t -> string
val of_string : string -> t option
val all : t list

val push :
  t ->
  qmdt2:float ->
  ex:float ->
  ey:float ->
  ez:float ->
  bx:float ->
  by:float ->
  bz:float ->
  float array ->
  unit
(** One velocity update in place; [qmdt2] = (q/m) dt/2. *)
