(** The shared numerics of CabanaPIC, called by both the DSL version
    and the structured-mesh reference so the two execute identical
    floating-point operations (the paper's machine-precision
    validation).

    Interpolator layout (18 doubles per cell, as in VPIC/CabanaPIC):
    {v
    0..3   ex0  dexdy  dexdz  d2exdydz
    4..7   ey0  deydz  deydx  d2eydzdx
    8..11  ez0  dezdx  dezdy  d2ezdxdy
    12..13 cbx0 dcbxdx
    14..15 cby0 dcbydy
    16..17 cbz0 dcbzdz
    v} *)

type nb = Own | Px | Py | Pz | Pyz | Pzx | Pxy

val build_interpolator :
  get_e:(nb -> int -> float) -> get_b:(nb -> int -> float) -> set:(int -> float -> unit) -> unit

val eval_fields :
  g:(int -> float) ->
  ox:float ->
  oy:float ->
  oz:float ->
  float * float * float * float * float * float
(** Fields at normalised cell offsets in [-1,1]^3:
    (ex, ey, ez, bx, by, bz). *)

val boris :
  qmdt2:float ->
  ex:float ->
  ey:float ->
  ez:float ->
  bx:float ->
  by:float ->
  bz:float ->
  float array ->
  unit
(** Non-relativistic Boris rotation, velocity updated in place. *)

val stream : float array -> float array -> float array -> int
(** One streaming step within a cell (offsets span [-1,1] per axis):
    updates offsets [o] and remaining displacement [r] in place,
    writes the traversed displacement to the third array, and returns
    -1 (stopped inside) or the exit face
    (0:-x 1:+x 2:-y 3:+y 4:-z 5:+z). *)

val spent : float array -> bool
(** Remaining displacement negligible: the walk may end. *)

val curl_e_forward :
  ge:(int -> int -> float) -> dx:float -> dy:float -> dz:float -> float * float * float
(** Curl of E at the B (face) locations, forward differences; getter
    slots 0:own 1:+x 2:+y 3:+z. *)

val curl_b_backward :
  gb:(int -> int -> float) -> dx:float -> dy:float -> dz:float -> float * float * float
(** Curl of B at the E (edge) locations, backward differences; getter
    slots 0:own 1:-x 2:-y 3:-z. *)

val two_stream_particle :
  Opp_core.Rng.t ->
  prm:Cabana_params.t ->
  idx:int ->
  z0:float ->
  dz:float ->
  float array * float array
(** Initial (offsets, velocity) of particle [idx] of a cell whose
    z-extent starts at [z0]: alternating +-v0 streams with the seeded
    sinusoidal perturbation. *)
