lib/apps_dist/cabana_dist.ml: Array Cabana Exch Float Hashtbl List Mailbox Opp Opp_core Opp_dist Opp_mesh Opp_thread Option Partition Profile Runner Seq Traffic Types
