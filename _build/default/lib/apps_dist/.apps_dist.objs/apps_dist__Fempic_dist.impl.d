lib/apps_dist/fempic_dist.ml: Array Exch Fempic Float Hashtbl List Mailbox Opp Opp_core Opp_dist Opp_mesh Opp_thread Option Particle Partition Profile Runner Seq Tet_part Traffic Types
