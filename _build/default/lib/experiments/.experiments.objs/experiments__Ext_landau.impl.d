lib/experiments/ext_landau.ml: Array Float Format Landau List
