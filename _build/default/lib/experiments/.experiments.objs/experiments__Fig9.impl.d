lib/experiments/fig9.ml: Cabana Config Fempic Format List Opp Opp_core Opp_gpu Opp_perf Profile
