lib/experiments/workload.ml: Float Opp_core Opp_dist Opp_gpu Opp_perf
