lib/experiments/registry.ml: Ablations Ext_landau Fig12 Fig9 Format List Opp_perf Rooflines Scaling Validate
