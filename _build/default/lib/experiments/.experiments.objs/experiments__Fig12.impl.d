lib/experiments/fig12.ml: Cabana Cabana_ref Config Format List Opp_core Opp_gpu Opp_perf Unix
