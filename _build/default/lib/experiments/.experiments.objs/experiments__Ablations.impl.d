lib/experiments/ablations.ml: Apps_dist Config Fempic Float Format Fun List Opp Opp_core Opp_dist Opp_gpu Opp_mesh Opp_perf Opp_thread Profile Runner Seq Types Unix
