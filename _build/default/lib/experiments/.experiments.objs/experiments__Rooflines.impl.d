lib/experiments/rooflines.ml: Config Fig9 Format List Opp_gpu Opp_perf
