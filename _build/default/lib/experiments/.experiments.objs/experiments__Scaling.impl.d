lib/experiments/scaling.ml: Apps_dist Config Fig9 Float Format Lazy List Opp_core Opp_dist Opp_perf Printf Systems Traffic Workload
