lib/experiments/config.ml: Cabana Fempic Opp_mesh
