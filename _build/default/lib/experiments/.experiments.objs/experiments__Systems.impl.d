lib/experiments/systems.ml: Opp_gpu Opp_perf
