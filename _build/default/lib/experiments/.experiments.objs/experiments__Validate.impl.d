lib/experiments/validate.ml: Apps_dist Cabana Cabana_ref Config Float Format Opp_core Opp_dist
