(** Figures 10 and 11: roofline placement of every significant kernel
    of both mini-apps on the Intel 8268 node, the V100 and one MI250X
    GCD (the paper's three roofline plots per app).

    Arithmetic intensity comes from the loop descriptors (bytes) and
    the kernels' declared flop counts; the achieved rate divides by
    the modelled kernel time, so bandwidth-bound kernels sit on the
    DRAM roof and the latency-bound AMD DepositCharge falls far below
    it — the paper's qualitative picture. *)

let devices =
  [
    (Opp_perf.Device.xeon_8268_node, Opp_gpu.Gpu_runner.AT);
    (Opp_perf.Device.v100, Opp_gpu.Gpu_runner.AT);
    (Opp_perf.Device.mi250x_gcd, Opp_gpu.Gpu_runner.UA);
  ]

(* kernels shown in the paper's roofline plots (data movers and host
   phases are excluded there too) *)
let interesting =
  [
    "CalcPosVel";
    "Move";
    "DepositCharge";
    "ComputeElectricField";
    "Interpolate";
    "Move_Deposit";
    "AdvanceB";
    "AdvanceE";
  ]

let filter_points points =
  List.filter (fun p -> List.mem p.Opp_perf.Roofline.kernel interesting) points

let pp_device fmt (device : Opp_perf.Device.t) profile =
  Format.fprintf fmt "@.%s (DRAM %.0f GB/s, FP64 %.1f TF/s):@." device.Opp_perf.Device.name
    (device.Opp_perf.Device.mem_bw /. 1e9)
    (device.Opp_perf.Device.peak_fp64 /. 1e12);
  Opp_perf.Roofline.pp_points fmt
    (filter_points (Opp_perf.Roofline.points device ~t:profile ()))

let run_fempic fmt =
  Format.fprintf fmt "Figure 10: Mini-FEM-PIC rooflines@.";
  List.iter
    (fun (device, mode) -> pp_device fmt device (Fig9.fempic_on (device, mode)))
    devices

let run_cabana fmt =
  Format.fprintf fmt "Figure 11: CabanaPIC rooflines (%d ppc)@." Config.cabana_ppc_low;
  List.iter
    (fun (device, mode) ->
      pp_device fmt device (Fig9.cabana_on ~ppc:Config.cabana_ppc_low (device, mode)))
    devices
