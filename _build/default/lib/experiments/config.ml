(** Scaled problem configurations for the evaluation harness.

    The paper's single-node problems are scaled down by a fixed factor
    of ~500 in element count while preserving the particles-per-cell
    regimes exactly (Mini-FEM-PIC: ~1450 ppc as in 48k cells / 70M
    particles; CabanaPIC: 750 / 1500 / 3000 ppc) — contention on
    deposits and the move/deposit balance are ppc-driven, so the
    shapes survive the scaling. The SIMT cost model multiplies the
    executed work back up by [work_scale] so modelled times land in
    the paper's regime. *)

(* --- Mini-FEM-PIC --- *)

let fempic_work_scale = 500.0

(* 2x2x4 hexes = 96 tets at ~1450 particles per cell *)
let fempic_mesh () = Opp_mesh.Tet_mesh.build ~nx:2 ~ny:2 ~nz:4 ~lx:2e-5 ~ly:2e-5 ~lz:4e-5

let fempic_prm =
  { Fempic.Params.default with Fempic.Params.target_particles = 139_200.0 }

let fempic_steps = 10

(* a smaller, faster config for tests and micro-benchmarks *)
let fempic_small_prm =
  { Fempic.Params.default with Fempic.Params.target_particles = 10_000.0 }

(* weak scaling: the duct cross-section grows with the rank count
   (column partitions), depth fixed; particle load kept low for the
   communication measurement and rescaled by the model *)
let fempic_scaling_ppc_fraction = 0.15

let fempic_scaled_mesh ~ranks =
  let px = ref 1 in
  for f = 1 to int_of_float (sqrt (float_of_int ranks)) do
    if ranks mod f = 0 then px := f
  done;
  let px = !px in
  let py = ranks / px in
  Opp_mesh.Tet_mesh.build ~nx:(2 * px) ~ny:(2 * py) ~nz:4
    ~lx:(2e-5 *. float_of_int px)
    ~ly:(2e-5 *. float_of_int py)
    ~lz:4e-5

let fempic_scaled_prm ~ranks =
  {
    Fempic.Params.default with
    Fempic.Params.target_particles =
      139_200.0 *. fempic_scaling_ppc_fraction *. float_of_int ranks;
  }

(* --- CabanaPIC --- *)

let cabana_work_scale = 500.0

(* 4x4x12 = 192 cells; the paper's exact ppc regimes *)
let cabana_prm ~ppc =
  { Cabana.Cabana_params.default with Cabana.Cabana_params.nx = 4; ny = 4; nz = 12; ppc }

let cabana_ppc_low = 750
let cabana_ppc_mid = 1500
let cabana_ppc_high = 3000
let cabana_steps = 10

(* weak scaling: the duct grows along z with the rank count (slabs) *)
let cabana_scaling_ppc = 96

let cabana_scaled_prm ~ranks ~ppc =
  {
    Cabana.Cabana_params.default with
    Cabana.Cabana_params.nx = 4;
    ny = 4;
    nz = 12 * ranks;
    lz = Cabana.Cabana_params.default.Cabana.Cabana_params.lz *. float_of_int ranks;
    ppc;
  }
