(** The four clusters of the paper's Table 2, assembled from the
    device and interconnect models. *)

type t = {
  sys_name : string;
  device : Opp_perf.Device.t;  (** the unit that owns one MPI rank *)
  net : Opp_perf.Netmodel.t;
  devices_per_node : int;
  node_power : float;  (** watts *)
  best_atomic : Opp_gpu.Gpu_runner.atomic_mode;
}

(* Avon: Intel Xeon 8268 nodes, InfiniBand HDR100 *)
let avon =
  {
    sys_name = "Avon (2x Xeon 8268)";
    device = Opp_perf.Device.xeon_8268_node;
    net = Opp_perf.Netmodel.infiniband;
    devices_per_node = 1;
    node_power = 475.0;
    best_atomic = Opp_gpu.Gpu_runner.AT;
  }

(* ARCHER2: AMD EPYC 7742 nodes, Slingshot *)
let archer2 =
  {
    sys_name = "ARCHER2 (2x EPYC 7742)";
    device = Opp_perf.Device.epyc_7742_node;
    net = Opp_perf.Netmodel.slingshot_cpu;
    devices_per_node = 1;
    node_power = 660.0;
    best_atomic = Opp_gpu.Gpu_runner.AT;
  }

(* Bede: 4x V100 per node, InfiniBand EDR *)
let bede =
  {
    sys_name = "Bede (V100)";
    device = Opp_perf.Device.v100;
    net = Opp_perf.Netmodel.infiniband;
    devices_per_node = 4;
    node_power = 1500.0;
    best_atomic = Opp_gpu.Gpu_runner.AT;
  }

(* LUMI-G: 4x MI250X per node = 8 GCDs, Slingshot *)
let lumi_g =
  {
    sys_name = "LUMI-G (MI250X GCD)";
    device = Opp_perf.Device.mi250x_gcd;
    net = Opp_perf.Netmodel.slingshot_gpu;
    devices_per_node = 8;
    node_power = 2390.0;
    best_atomic = Opp_gpu.Gpu_runner.UA;
  }

let all = [ avon; archer2; bede; lumi_g ]

(** Power drawn by [devices] ranks of this system. *)
let power t ~devices =
  float_of_int devices /. float_of_int t.devices_per_node *. t.node_power
