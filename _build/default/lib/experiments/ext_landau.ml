(** Extension experiment (beyond the paper's artefacts): Landau
    damping as a third DSL application, validated against kinetic
    theory. See [lib/landau]. *)

let run fmt =
  Format.fprintf fmt
    "Extension: Landau damping in the DSL (quiet start, k*lambda_D sweep)@.";
  Format.fprintf fmt
    "theory = exact kinetic dispersion solutions (McKinstrie et al.)@.@.";
  Format.fprintf fmt "%10s %12s %12s %10s@." "k*lambda_D" "measured" "theory" "ratio";
  List.iter
    (fun k_ld ->
      let prm = { Landau.Landau_sim.default with Landau.Landau_sim.k_ld } in
      let sim = Landau.Landau_sim.create ~prm () in
      let steps = 90 in
      let hist = Array.make steps 0.0 in
      for s = 0 to steps - 1 do
        Landau.Landau_sim.step sim;
        hist.(s) <- Landau.Landau_sim.field_energy sim
      done;
      let theory = Landau.Landau_sim.theoretical_damping_rate prm in
      match Landau.Landau_sim.fit_damping_rate ~dt:prm.Landau.Landau_sim.dt (Array.sub hist 0 80) with
      | Some gamma ->
          Format.fprintf fmt "%10.2f %12.4f %12.4f %9.2fx@." k_ld gamma theory
            (gamma /. Float.max theory 1e-12)
      | None -> Format.fprintf fmt "%10.2f %12s %12.4f@." k_ld "no fit" theory)
    [ 0.4; 0.5 ];
  Format.fprintf fmt
    "@.(collisionless damping out of a quiet start; the paper's DSL claim carried to a third application)@."
