(** Figure 9: single node/device runtime breakdowns.

    Both mini-apps are replayed through the SIMT cost model for each
    device of the paper's Figure 9 (two CPU nodes, V100, H100, MI210,
    MI250X GCD), producing the per-kernel time columns. The expected
    shapes: Move (or Move_Deposit) dominates everywhere; on AMD GPUs
    DepositCharge rivals or beats Move because even UA/SR atomics pay
    for contention; NVIDIA atomics keep DepositCharge cheap. *)

open Opp_core

let devices =
  [
    (Opp_perf.Device.xeon_8268_node, Opp_gpu.Gpu_runner.AT);
    (Opp_perf.Device.epyc_7742_node, Opp_gpu.Gpu_runner.AT);
    (Opp_perf.Device.v100, Opp_gpu.Gpu_runner.AT);
    (Opp_perf.Device.h100, Opp_gpu.Gpu_runner.AT);
    (Opp_perf.Device.mi210, Opp_gpu.Gpu_runner.UA);
    (Opp_perf.Device.mi250x_gcd, Opp_gpu.Gpu_runner.UA);
  ]

(* Modelled cost of the field solve on [device]: the CG iterations
   stream the stiffness matrix (12 bytes/nnz) and half a dozen node
   vectors per iteration. *)
let model_field_solve ~device ~nnz ~nnodes ~cg_iterations =
  let bytes_per_iter = float_of_int ((nnz * 12) + (6 * nnodes * 8)) in
  Opp_perf.Device.kernel_time device ~bytes:(float_of_int cg_iterations *. bytes_per_iter)
    ~flops:(float_of_int cg_iterations *. float_of_int (2 * nnz))

(** Mini-FEM-PIC breakdown ledger for one device. *)
let fempic_on (device, mode) =
  let model = Profile.create () in
  let host = Profile.create () in
  let gpu =
    Opp_gpu.Gpu_runner.create ~profile:model ~mode ~work_scale:Config.fempic_work_scale device
  in
  let sim =
    Fempic.Fempic_sim.create ~prm:Config.fempic_prm ~runner:(Opp_gpu.Gpu_runner.runner gpu)
      ~profile:host ~use_direct_hop:true (Config.fempic_mesh ())
  in
  ignore (Fempic.Fempic_sim.prefill sim);
  let cg_total = ref 0 in
  for _ = 1 to Config.fempic_steps do
    (* the paper keeps GPU particles locality-ordered (auxiliary sort
       API + periodic shuffling): warp lanes walk similar paths, so
       divergence stays low — at the price of deposit contention *)
    if Opp_perf.Device.is_gpu device then
      Opp.sort_by_cell sim.Fempic.Fempic_sim.parts ~p2c:sim.Fempic.Fempic_sim.p2c;
    ignore (Fempic.Fempic_sim.step sim);
    match sim.Fempic.Fempic_sim.last_solver_stats with
    | Some st -> cg_total := !cg_total + st.Fempic.Field_solver.cg_iterations
    | None -> ()
  done;
  let solve_seconds =
    Config.fempic_work_scale
    *. model_field_solve ~device
         ~nnz:(Fempic.Field_solver.stiffness_nnz sim.Fempic.Fempic_sim.solver)
         ~nnodes:(Fempic.Field_solver.node_count sim.Fempic.Fempic_sim.solver)
         ~cg_iterations:!cg_total
  in
  Profile.record ~t:model ~name:"Solve" ~elems:0 ~seconds:solve_seconds ~flops:0.0 ~bytes:0.0
    ();
  model

(** CabanaPIC breakdown ledger for one device and particle regime. *)
let cabana_on ~ppc (device, mode) =
  let model = Profile.create () in
  let host = Profile.create () in
  let gpu =
    Opp_gpu.Gpu_runner.create ~profile:model ~mode ~work_scale:Config.cabana_work_scale device
  in
  let sim =
    Cabana.Cabana_sim.create ~prm:(Config.cabana_prm ~ppc)
      ~runner:(Opp_gpu.Gpu_runner.runner gpu) ~profile:host ()
  in
  Cabana.Cabana_sim.run sim ~steps:Config.cabana_steps;
  model

let run_fempic fmt =
  Format.fprintf fmt
    "Figure 9(a): Mini-FEM-PIC runtime breakdown (modelled at %gx scale: 48k cells, ~70M particles equivalent; %d steps, direct-hop)@.@."
    Config.fempic_work_scale Config.fempic_steps;
  let columns =
    List.map (fun (d, m) -> ((d : Opp_perf.Device.t).Opp_perf.Device.short, fempic_on (d, m))) devices
  in
  Opp_perf.Report.pp_breakdown fmt columns

let run_cabana fmt =
  List.iter
    (fun ppc ->
      let prm = Config.cabana_prm ~ppc in
      Format.fprintf fmt
        "@.Figure 9(b): CabanaPIC runtime breakdown (%d ppc; modelled at %gx scale: 96k cells, %.0fM particles equivalent; %d steps)@.@."
        ppc Config.cabana_work_scale
        (float_of_int (Cabana.Cabana_params.nparticles prm) *. Config.cabana_work_scale /. 1e6)
        Config.cabana_steps;
      let columns =
        List.map
          (fun (d, m) -> ((d : Opp_perf.Device.t).Opp_perf.Device.short, cabana_on ~ppc (d, m)))
          devices
      in
      Opp_perf.Report.pp_breakdown fmt columns)
    [ Config.cabana_ppc_low; Config.cabana_ppc_mid ]
