(** The paper's validation (section 4): the DSL-generated CabanaPIC
    matches the original implementation's field energies to machine
    precision, per iteration; and the distributed runs reproduce the
    sequential results. *)

let run fmt =
  Format.fprintf fmt
    "Validation: OP-PIC CabanaPIC vs structured-mesh original, field energy per iteration@.@.";
  let prm = Config.cabana_prm ~ppc:64 in
  let dsl = Cabana.Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
  let reference = Cabana_ref.create ~prm () in
  let max_rel = ref 0.0 in
  Format.fprintf fmt "%6s %16s %16s %14s@." "step" "E energy" "B energy" "|rel diff|";
  for s = 1 to 100 do
    Cabana.Cabana_sim.step dsl;
    Cabana_ref.step reference;
    let a = Cabana.Cabana_sim.energies dsl in
    let b = Cabana_ref.energies reference in
    let rel =
      Float.abs (a.Cabana.Cabana_sim.e_field -. b.Cabana_ref.e_field)
      /. Float.max 1e-300 (Float.abs b.Cabana_ref.e_field)
    in
    if rel > !max_rel then max_rel := rel;
    if s mod 20 = 0 then
      Format.fprintf fmt "%6d %16.8e %16.8e %14.3e@." s a.Cabana.Cabana_sim.e_field
        a.Cabana.Cabana_sim.b_field rel
  done;
  Format.fprintf fmt "@.max relative E-energy difference over 100 steps: %.3e %s@." !max_rel
    (if !max_rel < 1e-14 then "(machine precision, as in the paper)" else "(EXCEEDS the paper's 1e-15 bound!)");
  (* distributed validation *)
  let steps = 15 in
  let seq_sim = Cabana.Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
  Cabana.Cabana_sim.run seq_sim ~steps;
  let dist = Apps_dist.Cabana_dist.create ~prm ~nranks:4 ~profile:(Opp_core.Profile.create ()) () in
  Apps_dist.Cabana_dist.run dist ~steps;
  let e_seq = (Cabana.Cabana_sim.energies seq_sim).Cabana.Cabana_sim.e_field in
  let e_dist = (Apps_dist.Cabana_dist.energies dist).Cabana.Cabana_sim.e_field in
  Format.fprintf fmt
    "distributed (4 ranks) vs sequential E energy after %d steps: rel diff %.3e@." steps
    (Float.abs (e_seq -. e_dist) /. Float.max 1e-300 e_seq);
  Format.fprintf fmt "particles migrated across ranks: %d@."
    dist.Apps_dist.Cabana_dist.traffic.Opp_dist.Traffic.migrated_particles
