(** Turning executed runs into modelled times.

    Compute time per device comes from replaying the application
    through the SIMT cost model ({!Opp_gpu.Gpu_runner}); communication
    time comes from the byte/message counts of a genuinely executed
    simulated-MPI run fed into the interconnect model. The two
    combine into the weak-scaling and power-equivalent projections. *)

(* Per-rank, per-step communication quantities. *)
type comm = {
  halo_bytes : float;
  halo_messages : float;
  migrate_bytes : float;
  migrate_messages : float;
  reductions : float;
  solve_bytes : float;
  imbalance : float;
      (** particle load imbalance (max/mean - 1): idle time at the
          move-finalisation barrier, as a fraction of compute *)
}

let comm_of_traffic (tr : Opp_dist.Traffic.t) ~ranks ~steps =
  let per v = v /. float_of_int (ranks * steps) in
  {
    halo_bytes = per tr.Opp_dist.Traffic.halo_bytes;
    halo_messages = per (float_of_int tr.Opp_dist.Traffic.halo_messages);
    migrate_bytes = per tr.Opp_dist.Traffic.migrate_bytes;
    migrate_messages = per (float_of_int tr.Opp_dist.Traffic.migrate_messages);
    reductions = per (float_of_int tr.Opp_dist.Traffic.reductions) *. float_of_int ranks;
    solve_bytes = per tr.Opp_dist.Traffic.solve_bytes;
    imbalance = 0.0;
  }

(** Synchronisation seconds lost to particle imbalance at the
    move-finalisation barrier. *)
let sync_time (c : comm) ~compute ~ranks = if ranks > 1 then c.imbalance *. compute else 0.0

(** Modelled communication seconds per step per rank at [ranks]. *)
let comm_time (c : comm) (net : Opp_perf.Netmodel.t) ~ranks =
  if ranks <= 1 then 0.0
  else
    let p2p =
      Opp_perf.Netmodel.p2p_time net
        ~messages:(int_of_float (Float.ceil (c.halo_messages +. c.migrate_messages)))
        ~bytes:(int_of_float (c.halo_bytes +. c.migrate_bytes))
    in
    let collectives =
      c.reductions *. Opp_perf.Netmodel.allreduce_time net ~ranks ~bytes:8
    in
    let solve = c.solve_bytes /. net.Opp_perf.Netmodel.bandwidth in
    (* finalising the particle move synchronises all ranks (section 4.2) *)
    let sync = Opp_perf.Netmodel.barrier_time net ~ranks in
    p2p +. collectives +. solve +. sync

(** Modelled compute seconds per step of [run] (which executes the
    application for [steps] steps against the given runner) on
    [device]: the application is replayed through the SIMT cost model
    so atomic serialization and warp divergence are included. *)
let compute_time_on ~device ~mode run =
  let profile = Opp_core.Profile.create () in
  let gpu = Opp_gpu.Gpu_runner.create ~profile ~mode device in
  run (Opp_gpu.Gpu_runner.runner gpu);
  (Opp_core.Profile.total_seconds ~t:profile (), profile)

let per_step seconds ~steps = seconds /. float_of_int steps
