(** The experiment registry: every table and figure of the paper's
    evaluation plus the ablations and extensions, by id (DESIGN.md's
    experiment index; paper-vs-measured notes in EXPERIMENTS.md). *)

type t = { id : string; title : string; run : Format.formatter -> unit }

val all : t list
val find : string -> t option
val run_one : Format.formatter -> t -> unit
val run_all : Format.formatter -> unit
