(** Figures 13/14 (weak scaling), Table 1 (GPU utilisation) and
    Figure 15 (power-equivalent performance).

    Compute per rank comes from the same modelled single-device runs
    as Figure 9; communication per rank is {e measured} from genuine
    simulated-MPI executions (halo bytes/messages, migrated particles,
    collectives) and projected to the paper's problem scale by surface
    scaling, then priced by the interconnect model of each system. *)

open Opp_dist

type comm_profile = Workload.comm

(* surface-to-volume: a rank's halo grows with the 2/3 power of its
   workload when the problem scales up *)
let surface_scale work_scale = Float.pow work_scale (2.0 /. 3.0)

let scale_comm (c : comm_profile) ~work_scale ~migrate_extra ~imbalance =
  let s = surface_scale work_scale in
  {
    Workload.halo_bytes = c.Workload.halo_bytes *. s;
    halo_messages = c.Workload.halo_messages;
    migrate_bytes = c.Workload.migrate_bytes *. s *. migrate_extra;
    migrate_messages = c.Workload.migrate_messages;
    reductions = c.Workload.reductions;
    solve_bytes = c.Workload.solve_bytes *. work_scale;
    imbalance;
  }

(* --- measured communication profiles --- *)

let fempic_comm =
  lazy
    (let ranks = 4 and steps = 5 in
     let profile = Opp_core.Profile.create () in
     let dist =
       Apps_dist.Fempic_dist.create
         ~prm:(Config.fempic_scaled_prm ~ranks)
         ~nranks:ranks ~profile
         (Config.fempic_scaled_mesh ~ranks)
     in
     (* let the duct fill before measuring *)
     Apps_dist.Fempic_dist.run dist ~steps:20;
     Traffic.reset dist.Apps_dist.Fempic_dist.traffic;
     Apps_dist.Fempic_dist.run dist ~steps;
     let comm =
       Workload.comm_of_traffic dist.Apps_dist.Fempic_dist.traffic ~ranks ~steps
     in
     scale_comm comm ~work_scale:Config.fempic_work_scale
       ~migrate_extra:(1.0 /. Config.fempic_scaling_ppc_fraction)
       ~imbalance:(Apps_dist.Fempic_dist.particle_imbalance dist))

let cabana_comm ~ppc =
  let ranks = 4 and steps = 5 in
  let profile = Opp_core.Profile.create () in
  let dist =
    Apps_dist.Cabana_dist.create
      ~prm:(Config.cabana_scaled_prm ~ranks ~ppc:Config.cabana_scaling_ppc)
      ~nranks:ranks ~profile ()
  in
  Apps_dist.Cabana_dist.run dist ~steps:5;
  Traffic.reset dist.Apps_dist.Cabana_dist.traffic;
  Apps_dist.Cabana_dist.run dist ~steps;
  let comm = Workload.comm_of_traffic dist.Apps_dist.Cabana_dist.traffic ~ranks ~steps in
  scale_comm comm ~work_scale:Config.cabana_work_scale
    ~migrate_extra:(float_of_int ppc /. float_of_int Config.cabana_scaling_ppc)
    ~imbalance:(Apps_dist.Cabana_dist.particle_imbalance dist)

let cabana_comm_mid = lazy (cabana_comm ~ppc:Config.cabana_ppc_mid)

(* --- modelled per-device compute (reusing the Figure 9 ledgers) --- *)

let compute_per_step profile ~steps =
  Opp_core.Profile.total_seconds ~t:profile () /. float_of_int steps

let fempic_compute (sys : Systems.t) =
  compute_per_step
    (Fig9.fempic_on (sys.Systems.device, sys.Systems.best_atomic))
    ~steps:Config.fempic_steps

let cabana_compute ~ppc (sys : Systems.t) =
  compute_per_step
    (Fig9.cabana_on ~ppc (sys.Systems.device, sys.Systems.best_atomic))
    ~steps:Config.cabana_steps

(* --- weak-scaling series --- *)

let systems = [ Systems.archer2; Systems.bede; Systems.lumi_g ]

let series ~compute ~comm ~rank_counts (sys : Systems.t) =
  List.map
    (fun ranks ->
      {
        Opp_perf.Report.sp_ranks = ranks;
        sp_compute = compute;
        sp_comm =
          Workload.comm_time comm sys.Systems.net ~ranks
          +. Workload.sync_time comm ~compute ~ranks;
        sp_label = "";
      })
    rank_counts

let run_fempic fmt =
  let comm = Lazy.force fempic_comm in
  let rank_counts = [ 1; 2; 4; 8; 16; 32; 64; 128 ] in
  Opp_perf.Report.pp_scaling fmt
    ~title:
      "Figure 13: Mini-FEM-PIC weak scaling (48k cells / ~70M particles per device, per step)"
    (List.map
       (fun sys ->
         (sys.Systems.sys_name, series ~compute:(fempic_compute sys) ~comm ~rank_counts sys))
       systems)

let run_cabana fmt =
  let comm = Lazy.force cabana_comm_mid in
  Opp_perf.Report.pp_scaling fmt
    ~title:
      "Figure 14: CabanaPIC weak scaling (96k cells / 144M particles per device, per step)"
    (List.map
       (fun sys ->
         let rank_counts =
           if Opp_perf.Device.is_gpu sys.Systems.device then
             [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ]
           else [ 1; 2; 4; 8; 16; 32; 64; 128 ]
         in
         ( sys.Systems.sys_name,
           series
             ~compute:(cabana_compute ~ppc:Config.cabana_ppc_mid sys)
             ~comm ~rank_counts sys ))
       systems)

(* --- Table 1: GPU utilisation --- *)

let run_utilization fmt =
  Format.fprintf fmt "Table 1: modelled GPU utilisation (compute / (compute + comm))@.@.";
  let cab_comm = Lazy.force cabana_comm_mid in
  let fem_comm = Lazy.force fempic_comm in
  let rows =
    List.concat_map
      (fun (label, sys, compute, comm) ->
        List.map
          (fun devices ->
            ( Printf.sprintf "%s on %s" label sys.Systems.sys_name,
              devices,
              compute,
              Workload.comm_time comm sys.Systems.net ~ranks:devices
              +. Workload.sync_time comm ~compute ~ranks:devices ))
          [ 1; (if Opp_perf.Device.warp_size sys.Systems.device = 64 then 8 else 4) ])
      [
        ("CabanaPIC 96k/72M", Systems.lumi_g, cabana_compute ~ppc:Config.cabana_ppc_low Systems.lumi_g, cab_comm);
        ("CabanaPIC 96k/144M", Systems.lumi_g, cabana_compute ~ppc:Config.cabana_ppc_mid Systems.lumi_g, cab_comm);
        ("CabanaPIC 96k/144M", Systems.bede, cabana_compute ~ppc:Config.cabana_ppc_mid Systems.bede, cab_comm);
        ("Mini-FEM-PIC 48k/70M", Systems.bede, fempic_compute Systems.bede, fem_comm);
        ("Mini-FEM-PIC 48k/70M", Systems.lumi_g, fempic_compute Systems.lumi_g, fem_comm);
      ]
  in
  Opp_perf.Report.pp_utilization fmt rows

(* --- Figure 15: power-equivalent runtimes --- *)

(* ~12 kW configurations, as in the paper *)
let power_configs = [ (Systems.archer2, 18); (Systems.bede, 32); (Systems.lumi_g, 40) ]

let power_row ~units ~compute_per_unit ~comm (sys : Systems.t) ~devices =
  (* strong scaling: [units] device-sized work units spread over
     [devices] ranks *)
  let per_device_work = float_of_int units /. float_of_int devices in
  let compute = compute_per_unit sys *. per_device_work in
  let t =
    compute
    +. Workload.comm_time comm sys.Systems.net ~ranks:devices
    +. Workload.sync_time comm ~compute ~ranks:devices
  in
  (sys.Systems.sys_name, devices, Systems.power sys ~devices, t)

let run_power fmt =
  let fem_comm = Lazy.force fempic_comm in
  Opp_perf.Report.pp_power_equivalent fmt
    ~title:
      "Figure 15: power-equivalent runtimes, Mini-FEM-PIC 1.536M cells / ~2.5B particles (per step)"
    (List.map
       (fun (sys, devices) ->
         power_row ~units:32 ~compute_per_unit:fempic_compute ~comm:fem_comm sys ~devices)
       power_configs);
  Format.fprintf fmt "@.";
  let cab_comm = Lazy.force cabana_comm_mid in
  List.iter
    (fun (label, ppc, units) ->
      Opp_perf.Report.pp_power_equivalent fmt
        ~title:(Printf.sprintf "Figure 15: power-equivalent runtimes, CabanaPIC %s (per step)" label)
        (List.map
           (fun (sys, devices) ->
             power_row ~units ~compute_per_unit:(cabana_compute ~ppc) ~comm:cab_comm sys
               ~devices)
           power_configs);
      Format.fprintf fmt "@.")
    [ ("3.072M cells / ~2.3B particles", Config.cabana_ppc_low, 32);
      ("3.072M cells / ~4.6B particles", Config.cabana_ppc_mid, 32) ]
