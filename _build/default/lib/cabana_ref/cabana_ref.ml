(** Structured-mesh reference implementation of CabanaPIC.

    This plays the role of the original (Kokkos, structured-mesh)
    CabanaPIC in the paper: the hand-written baseline the DSL-generated
    unstructured version is compared against (Figure 12) and validated
    against (field energies matching to machine precision). It indexes
    cells directly by (i, j, k) with modular wrap-around — no DSL, no
    explicit connectivity — but calls the same {!Cabana.Cabana_phys}
    numerics in the same order, so results agree bitwise with the
    sequential DSL run. *)

type t = {
  prm : Cabana.Cabana_params.t;
  nx : int;
  ny : int;
  nz : int;
  ncells : int;
  nparts : int;
  dt : float;
  deltas : float array;
  e : float array;  (** 3 per cell *)
  b : float array;
  j : float array;
  acc : float array;
  interp : float array;  (** 18 per cell *)
  p_off : float array;  (** 3 per particle *)
  p_vel : float array;
  p_disp : float array;
  p_w : float array;
  p_cell : int array;
  mutable step_count : int;
}

let cell_id t i j k = (((k * t.ny) + j) * t.nx) + i

let cell_ijk t c =
  let i = c mod t.nx in
  let j = c / t.nx mod t.ny in
  let k = c / (t.nx * t.ny) in
  (i, j, k)

let wrap v n = ((v mod n) + n) mod n

let neighbour t c ~dx ~dy ~dz =
  let i, j, k = cell_ijk t c in
  cell_id t (wrap (i + dx) t.nx) (wrap (j + dy) t.ny) (wrap (k + dz) t.nz)

let create ?(prm = Cabana.Cabana_params.default) () =
  let nx = prm.Cabana.Cabana_params.nx
  and ny = prm.Cabana.Cabana_params.ny
  and nz = prm.Cabana.Cabana_params.nz in
  let ncells = nx * ny * nz in
  let ppc = prm.Cabana.Cabana_params.ppc in
  let nparts = ncells * ppc in
  let t =
    {
      prm;
      nx;
      ny;
      nz;
      ncells;
      nparts;
      dt = Cabana.Cabana_params.dt prm;
      deltas =
        [|
          Cabana.Cabana_params.dx prm; Cabana.Cabana_params.dy prm; Cabana.Cabana_params.dz prm;
        |];
      e = Array.make (3 * ncells) 0.0;
      b = Array.make (3 * ncells) 0.0;
      j = Array.make (3 * ncells) 0.0;
      acc = Array.make (3 * ncells) 0.0;
      interp = Array.make (18 * ncells) 0.0;
      p_off = Array.make (3 * nparts) 0.0;
      p_vel = Array.make (3 * nparts) 0.0;
      p_disp = Array.make (3 * nparts) 0.0;
      p_w = Array.make nparts 0.0;
      p_cell = Array.make nparts (-1);
      step_count = 0;
    }
  in
  (* identical per-cell RNG streams and loop order as the DSL version *)
  let w = Cabana.Cabana_params.weight prm in
  let dz = Cabana.Cabana_params.dz prm in
  for c = 0 to ncells - 1 do
    let rng = Opp_core.Rng.create (prm.Cabana.Cabana_params.seed + c) in
    let _, _, k = cell_ijk t c in
    let z0 = float_of_int k *. dz in
    for p = 0 to ppc - 1 do
      let idx = (c * ppc) + p in
      let off, vel = Cabana.Cabana_phys.two_stream_particle rng ~prm ~idx:p ~z0 ~dz in
      for d = 0 to 2 do
        t.p_off.((3 * idx) + d) <- off.(d);
        t.p_vel.((3 * idx) + d) <- vel.(d)
      done;
      t.p_w.(idx) <- w;
      t.p_cell.(idx) <- c
    done
  done;
  t

let interpolate t =
  for c = 0 to t.ncells - 1 do
    let nb_of = function
      | Cabana.Cabana_phys.Own -> c
      | Cabana.Cabana_phys.Px -> neighbour t c ~dx:1 ~dy:0 ~dz:0
      | Cabana.Cabana_phys.Py -> neighbour t c ~dx:0 ~dy:1 ~dz:0
      | Cabana.Cabana_phys.Pz -> neighbour t c ~dx:0 ~dy:0 ~dz:1
      | Cabana.Cabana_phys.Pyz -> neighbour t c ~dx:0 ~dy:1 ~dz:1
      | Cabana.Cabana_phys.Pzx -> neighbour t c ~dx:1 ~dy:0 ~dz:1
      | Cabana.Cabana_phys.Pxy -> neighbour t c ~dx:1 ~dy:1 ~dz:0
    in
    Cabana.Cabana_phys.build_interpolator
      ~get_e:(fun slot comp -> t.e.((3 * nb_of slot) + comp))
      ~get_b:(fun slot comp -> t.b.((3 * nb_of slot) + comp))
      ~set:(fun i v -> t.interp.((18 * c) + i) <- v)
  done

(* face order 0:-x 1:+x 2:-y 3:+y 4:-z 5:+z, as in Cabana_phys.stream *)
let face_neighbour t c face =
  match face with
  | 0 -> neighbour t c ~dx:(-1) ~dy:0 ~dz:0
  | 1 -> neighbour t c ~dx:1 ~dy:0 ~dz:0
  | 2 -> neighbour t c ~dx:0 ~dy:(-1) ~dz:0
  | 3 -> neighbour t c ~dx:0 ~dy:1 ~dz:0
  | 4 -> neighbour t c ~dx:0 ~dy:0 ~dz:(-1)
  | _ -> neighbour t c ~dx:0 ~dy:0 ~dz:1

let move_deposit t =
  Array.fill t.acc 0 (3 * t.ncells) 0.0;
  let qmdt2 = Cabana.Cabana_params.qe /. Cabana.Cabana_params.me *. t.dt /. 2.0 in
  let o = Array.make 3 0.0 and r = Array.make 3 0.0 and trav = Array.make 3 0.0 in
  let v = Array.make 3 0.0 in
  for p = 0 to t.nparts - 1 do
    let c = ref t.p_cell.(p) in
    for d = 0 to 2 do
      o.(d) <- t.p_off.((3 * p) + d);
      v.(d) <- t.p_vel.((3 * p) + d)
    done;
    (* push at the particle's cell *)
    let g i = t.interp.((18 * !c) + i) in
    let ex, ey, ez, bx, by, bz =
      Cabana.Cabana_phys.eval_fields ~g ~ox:o.(0) ~oy:o.(1) ~oz:o.(2)
    in
    Cabana.Cabana_phys.boris ~qmdt2 ~ex ~ey ~ez ~bx ~by ~bz v;
    for d = 0 to 2 do
      t.p_vel.((3 * p) + d) <- v.(d);
      r.(d) <- 2.0 *. v.(d) *. t.dt /. t.deltas.(d)
    done;
    let qw = Cabana.Cabana_params.qe *. t.p_w.(p) in
    let continue_walk = ref true in
    while !continue_walk do
      let face = Cabana.Cabana_phys.stream o r trav in
      for d = 0 to 2 do
        t.acc.((3 * !c) + d) <-
          t.acc.((3 * !c) + d) +. (qw *. (trav.(d) *. t.deltas.(d) /. 2.0) /. t.dt)
      done;
      if face < 0 then continue_walk := false
      else begin
        (* advance the cell first: the offset already describes the
           entered neighbour even when the displacement is now spent *)
        c := face_neighbour t !c face;
        if Cabana.Cabana_phys.spent r then continue_walk := false
      end
    done;
    for d = 0 to 2 do
      t.p_off.((3 * p) + d) <- o.(d);
      t.p_disp.((3 * p) + d) <- r.(d)
    done;
    t.p_cell.(p) <- !c
  done

let accumulate_current t =
  let inv_vol =
    1.0 /. (t.deltas.(0) *. t.deltas.(1) *. t.deltas.(2))
  in
  for i = 0 to (3 * t.ncells) - 1 do
    t.j.(i) <- t.acc.(i) *. inv_vol
  done

let advance_b t ~frac =
  let dx = t.deltas.(0) and dy = t.deltas.(1) and dz = t.deltas.(2) in
  let frac_dt = frac *. t.dt in
  let e' = t.e in
  for c = 0 to t.ncells - 1 do
    let nb = function
      | 0 -> c
      | 1 -> neighbour t c ~dx:1 ~dy:0 ~dz:0
      | 2 -> neighbour t c ~dx:0 ~dy:1 ~dz:0
      | _ -> neighbour t c ~dx:0 ~dy:0 ~dz:1
    in
    let ge slot comp = e'.((3 * nb slot) + comp) in
    let cx, cy, cz = Cabana.Cabana_phys.curl_e_forward ~ge ~dx ~dy ~dz in
    t.b.(3 * c) <- t.b.(3 * c) -. (frac_dt *. cx);
    t.b.((3 * c) + 1) <- t.b.((3 * c) + 1) -. (frac_dt *. cy);
    t.b.((3 * c) + 2) <- t.b.((3 * c) + 2) -. (frac_dt *. cz)
  done

let advance_e t =
  let dx = t.deltas.(0) and dy = t.deltas.(1) and dz = t.deltas.(2) in
  for c = 0 to t.ncells - 1 do
    let nb = function
      | 0 -> c
      | 1 -> neighbour t c ~dx:(-1) ~dy:0 ~dz:0
      | 2 -> neighbour t c ~dx:0 ~dy:(-1) ~dz:0
      | _ -> neighbour t c ~dx:0 ~dy:0 ~dz:(-1)
    in
    let gb slot comp = t.b.((3 * nb slot) + comp) in
    let cx, cy, cz = Cabana.Cabana_phys.curl_b_backward ~gb ~dx ~dy ~dz in
    t.e.(3 * c) <- t.e.(3 * c) +. (t.dt *. (cx -. t.j.(3 * c)));
    t.e.((3 * c) + 1) <- t.e.((3 * c) + 1) +. (t.dt *. (cy -. t.j.((3 * c) + 1)));
    t.e.((3 * c) + 2) <- t.e.((3 * c) + 2) +. (t.dt *. (cz -. t.j.((3 * c) + 2)))
  done

let step t =
  interpolate t;
  move_deposit t;
  accumulate_current t;
  advance_b t ~frac:0.5;
  advance_e t;
  advance_b t ~frac:0.5;
  t.step_count <- t.step_count + 1

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

type energies = { e_field : float; b_field : float; kinetic : float }

let energies t =
  let half_vol = 0.5 *. t.deltas.(0) *. t.deltas.(1) *. t.deltas.(2) in
  let ee = ref 0.0 and be = ref 0.0 in
  for c = 0 to t.ncells - 1 do
    let sq a i = a.((3 * c) + i) *. a.((3 * c) + i) in
    ee := !ee +. (half_vol *. (sq t.e 0 +. sq t.e 1 +. sq t.e 2));
    be := !be +. (half_vol *. (sq t.b 0 +. sq t.b 1 +. sq t.b 2))
  done;
  let ke = ref 0.0 in
  for p = 0 to t.nparts - 1 do
    let sq i = t.p_vel.((3 * p) + i) *. t.p_vel.((3 * p) + i) in
    ke := !ke +. (0.5 *. Cabana.Cabana_params.me *. t.p_w.(p) *. (sq 0 +. sq 1 +. sq 2))
  done;
  { e_field = !ee; b_field = !be; kinetic = !ke }
