lib/landau/landau_sim.mli: Opp_core Runner Seq Types
