lib/landau/landau_sim.ml: Array Cabana Float List Opp Opp_core Rng Runner Seq View
