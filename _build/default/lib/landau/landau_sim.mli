(** Landau damping: a third application written in the OP-PIC DSL
    (1-D periodic electron plasma, quiet start), validated against the
    exact kinetic damping rates. Normalised units: wp = 1,
    lambda_D = vth, qe = -1, me = 1, n0 = 1. *)

open Opp_core

type params = {
  nz : int;  (** ring cells *)
  k_ld : float;  (** k lambda_D, the benchmark's knob *)
  vth : float;
  amplitude : float;  (** seeded density perturbation *)
  ppc : int;
  dt : float;
  seed : int;
}

val default : params
(** Reproduces the kinetic rate at k lambda_D = 0.5 to ~1%. *)

type t = {
  prm : params;
  lz : float;
  dz : float;
  ctx : Types.ctx;
  cells : Types.set;
  parts : Types.set;
  c2c : Types.map;
  p2c : Types.map;
  cell_rho : Types.dat;
  cell_e : Types.dat;
  part_z : Types.dat;
  part_v : Types.dat;
  part_w : Types.dat;
  mutable step_count : int;
}

val create : ?prm:params -> unit -> t
(** Builds the ring mesh and quiet-start load (stratified positions
    displaced into the cos(kz) perturbation; inverse-CDF Maxwellian
    velocities in antithetic pairs). *)

val deposit : ?runner:Runner.t -> t -> unit
val solve_field : t -> unit
val push : ?runner:Runner.t -> t -> unit
val move : ?runner:Runner.t -> t -> Seq.move_result
val step : ?runner:Runner.t -> t -> unit
val run : ?runner:Runner.t -> t -> steps:int -> unit

val field_energy : t -> float

val asymptotic_damping_rate : params -> float
(** The textbook small-k-lambda_D formula (inaccurate near 0.5). *)

val theoretical_damping_rate : params -> float
(** Exact kinetic rate when tabulated (0.3/0.4/0.5), else the
    asymptotic form. *)

val fit_damping_rate : dt:float -> float array -> float option
(** Amplitude damping rate from the decaying peaks of a per-step
    field-energy history. *)
