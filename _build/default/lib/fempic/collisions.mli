(** Monte-Carlo collisions (MCC) with a uniform neutral background —
    the interleaved routine family the paper's section 2 describes
    (collisions, ionization). Charge-exchange, isotropic elastic
    scattering, and ionization via the null-collision method; random
    draws are staged into a per-particle dat before the loop so the
    kernel stays backend-portable, and ionization offspring are
    appended after the loop (flag-then-append, as on GPUs). *)

open Opp_core

type t = {
  neutral_density : float;
  neutral_temperature : float;
  sigma_cx : float;
  sigma_el : float;
  sigma_ion : float;
  dt : float;
  parts : Types.set;
  part_vel : Types.dat;
  part_pos : Types.dat option;
  p2c : Types.map option;
  part_rand : Types.dat;
  part_ionize : Types.dat;
  rng : Rng.t;
  mutable cx_count : int;
  mutable elastic_count : int;
  mutable ionization_count : int;
}

val create :
  ?neutral_density:float ->
  ?neutral_temperature:float ->
  ?sigma_cx:float ->
  ?sigma_el:float ->
  ?sigma_ion:float ->
  ?part_pos:Types.dat ->
  ?p2c:Types.map ->
  dt:float ->
  parts:Types.set ->
  part_vel:Types.dat ->
  seed:int ->
  unit ->
  t
(** Ionization ([sigma_ion > 0]) additionally needs [part_pos] and
    [p2c] to place the offspring. *)

val apply : ?runner:Runner.t -> t -> int * int * int
(** One collision step over every particle; returns this step's
    (charge-exchange, elastic, ionization) counts. *)

val expected_probability : t -> v:float -> float
(** Expected collisions per particle per step at speed [v]. *)
