lib/fempic/checkpoint.ml: Array Fempic_sim Fun Int64 Opp_core Particle Printf Rng
