lib/fempic/fempic_sim.ml: Array Field_solver Opp Opp_core Opp_mesh Params Profile Rng Runner Seq View
