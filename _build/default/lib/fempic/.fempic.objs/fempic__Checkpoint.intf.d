lib/fempic/checkpoint.mli: Fempic_sim
