lib/fempic/collisions.mli: Opp_core Rng Runner Types
