lib/fempic/field_solver.ml: Array Float Fun Opp_la Params
