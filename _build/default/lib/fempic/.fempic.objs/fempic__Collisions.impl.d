lib/fempic/collisions.ml: Arg Array List Opp_core Particle Rng Runner Seq View
