lib/fempic/params.mli:
