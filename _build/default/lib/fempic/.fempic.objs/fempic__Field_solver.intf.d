lib/fempic/field_solver.mli: Params
