lib/fempic/params.ml:
