(** Nonlinear Poisson field solver for Mini-FEM-PIC.

    Solves the electrostatic potential with Boltzmann electrons,

      eps0 K phi = b(rho_ion) - qe n0 exp((phi - phi0)/kTe) V

    by Newton iteration; each linear step J dphi = -F uses the
    Jacobi-CG solver of [opp_la] (the PETSc KSP substitute). The
    stiffness matrix K comes from linear tetrahedral elements,
    K_ij = sum_cells V_c (g_i . g_j), with the constant shape-function
    gradients g of {!Opp_mesh.Geom.bary_coefficients}.

    The solver is communication-agnostic: distributed runs pass halo
    exchange / reduction hooks in [comm]; sequential runs use
    {!comm_seq}. Vectors are indexed by local nodes (owned first);
    Dirichlet nodes are masked out of the Krylov space rather than
    eliminated, which keeps the operator symmetric. *)

type comm = {
  owned_nodes : int;  (** nodes [0, owned) are owned by this rank *)
  exchange : float array -> unit;  (** refresh halo copies from owners *)
  reduce : float array -> unit;  (** add halo contributions into owners *)
  allreduce : float -> float;
}

let comm_seq ~nnodes =
  { owned_nodes = nnodes; exchange = ignore; reduce = ignore; allreduce = Fun.id }

type t = {
  nnodes : int;
  stiffness : Opp_la.Csr.t;  (** local K, assembled once *)
  node_volume : float array;
  active : bool array;  (** false at Dirichlet nodes *)
  comm : comm;
  prm : Params.t;
  (* scratch *)
  f : float array;
  dphi : float array;
  jac_diag : float array;  (** diagonal Boltzmann term of the Jacobian *)
  kphi : float array;
}

type stats = { newton_iterations : int; cg_iterations : int; residual : float; converged : bool }

let assemble_stiffness ~nnodes ~ncells ~cell_nodes ~cell_bary ~cell_volume =
  let triplets = ref [] in
  for c = 0 to ncells - 1 do
    let v = cell_volume.(c) in
    for i = 0 to 3 do
      let ni = cell_nodes.((4 * c) + i) in
      for j = 0 to 3 do
        let nj = cell_nodes.((4 * c) + j) in
        let gg = ref 0.0 in
        for d = 1 to 3 do
          gg := !gg +. (cell_bary.((16 * c) + (4 * i) + d) *. cell_bary.((16 * c) + (4 * j) + d))
        done;
        triplets := (ni, nj, v *. !gg) :: !triplets
      done
    done
  done;
  Opp_la.Csr.of_triplets nnodes !triplets

let create ~nnodes ~ncells ~cell_nodes ~cell_bary ~cell_volume ~node_volume ~active
    ~(comm : comm) (prm : Params.t) =
  if Array.length active <> nnodes then invalid_arg "Field_solver.create: active size";
  let stiffness = assemble_stiffness ~nnodes ~ncells ~cell_nodes ~cell_bary ~cell_volume in
  {
    nnodes;
    stiffness;
    node_volume;
    active;
    comm;
    prm;
    f = Array.make nnodes 0.0;
    dphi = Array.make nnodes 0.0;
    jac_diag = Array.make nnodes 0.0;
    kphi = Array.make nnodes 0.0;
  }

(* Distributed SpMV: local rows, then halo-row contributions are pushed
   to owners and owner values copied back out. *)
let spmv_k t x y =
  t.comm.exchange x;
  Opp_la.Csr.spmv t.stiffness x y;
  t.comm.reduce y;
  t.comm.exchange y

let mask t x =
  for i = 0 to t.nnodes - 1 do
    if not t.active.(i) then x.(i) <- 0.0
  done

let dot_owned t x y =
  let s = ref 0.0 in
  for i = 0 to t.comm.owned_nodes - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  t.comm.allreduce !s

(* Boltzmann electron number density, with the exponent clamped so
   vacuum regions (phi << phi0) cannot overflow. *)
let electron_density prm phi =
  let arg = Float.min ((phi -. prm.Params.phi0) /. prm.Params.kte) 25.0 in
  prm.Params.plasma_den *. exp arg

(* Nonlinear residual F(phi) on active nodes; also fills the Jacobian's
   Boltzmann diagonal for the subsequent linear solve. *)
let residual t ~phi ~ion_charge_density =
  spmv_k t phi t.kphi;
  for i = 0 to t.nnodes - 1 do
    if t.active.(i) then begin
      let prm = t.prm in
      let ne = electron_density prm phi.(i) in
      let rho = ion_charge_density.(i) -. (Params.qe *. ne) in
      t.f.(i) <- (Params.eps0 *. t.kphi.(i)) -. (rho *. t.node_volume.(i));
      t.jac_diag.(i) <- Params.qe *. ne /. prm.Params.kte *. t.node_volume.(i)
    end
    else begin
      t.f.(i) <- 0.0;
      t.jac_diag.(i) <- 0.0
    end
  done

(* One masked Jacobi-CG solve of J dphi = -F with
   J x = eps0 K x + diag x. *)
let linear_solve t =
  let n = t.nnodes in
  let x = t.dphi in
  Array.fill x 0 n 0.0;
  let r = Array.map (fun v -> -.v) t.f in
  mask t r;
  let inv_diag =
    Array.init n (fun i ->
        let d = (Params.eps0 *. Opp_la.Csr.get t.stiffness i i) +. t.jac_diag.(i) in
        if Float.abs d > 0.0 then 1.0 /. d else 1.0)
  in
  let z = Array.make n 0.0 and p = Array.make n 0.0 and jp = Array.make n 0.0 in
  Opp_la.Vec.mul_pointwise inv_diag r z;
  mask t z;
  Array.blit z 0 p 0 n;
  let rz = ref (dot_owned t r z) in
  let r0 = sqrt (dot_owned t r r) in
  let tol = Float.max (t.prm.Params.cg_rtol *. r0) 1e-300 in
  let res = ref r0 in
  let iters = ref 0 in
  let max_iter = 20 * n in
  while !res > tol && !iters < max_iter do
    spmv_k t p jp;
    for i = 0 to n - 1 do
      jp.(i) <- (Params.eps0 *. jp.(i)) +. (t.jac_diag.(i) *. p.(i))
    done;
    mask t jp;
    let pjp = dot_owned t p jp in
    if pjp <= 0.0 then iters := max_iter
    else begin
      let alpha = !rz /. pjp in
      Opp_la.Vec.axpy alpha p x;
      Opp_la.Vec.axpy (-.alpha) jp r;
      Opp_la.Vec.mul_pointwise inv_diag r z;
      mask t z;
      let rz' = dot_owned t r z in
      let beta = rz' /. !rz in
      rz := rz';
      Opp_la.Vec.aypx beta z p;
      res := sqrt (dot_owned t r r);
      incr iters
    end
  done;
  !iters

(** Newton-solve the potential in place. [phi] must carry the Dirichlet
    values at inactive nodes on entry (they are never modified).
    [ion_charge_density] is the node charge density deposited by
    particles, C/m^3. *)
let solve t ~(phi : float array) ~(ion_charge_density : float array) =
  let cg_total = ref 0 in
  let newton = ref 0 in
  let fnorm = ref infinity in
  let first_fnorm = ref 0.0 in
  let converged = ref false in
  while (not !converged) && !newton < t.prm.Params.max_newton do
    residual t ~phi ~ion_charge_density;
    fnorm := sqrt (dot_owned t t.f t.f);
    if !newton = 0 then first_fnorm := !fnorm;
    (* tolerance relative to the problem's charge scale and to the
       initial residual (the latter keeps linear problems -- zero
       Boltzmann density -- convergent) *)
    let charge_scale =
      Params.qe
      *. Float.max t.prm.Params.plasma_den 1.0
      *. sqrt (dot_owned t t.node_volume t.node_volume)
    in
    let scale = Float.max charge_scale !first_fnorm in
    if !fnorm <= t.prm.Params.newton_tol *. scale then converged := true
    else begin
      cg_total := !cg_total + linear_solve t;
      for i = 0 to t.nnodes - 1 do
        if t.active.(i) then phi.(i) <- phi.(i) +. t.dphi.(i)
      done;
      t.comm.exchange phi;
      incr newton
    end
  done;
  { newton_iterations = !newton; cg_iterations = !cg_total; residual = !fnorm; converged = !converged }

(** Size of the assembled stiffness matrix (nonzeros), for the
    communication/compute models of the evaluation harness. *)
let stiffness_nnz t = Opp_la.Csr.nnz t.stiffness

let node_count t = t.nnodes
