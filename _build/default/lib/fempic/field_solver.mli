(** Nonlinear Poisson field solver for Mini-FEM-PIC: the electrostatic
    potential with Boltzmann electrons,

      eps0 K phi = b(rho_ion) - qe n0 exp((phi - phi0)/kTe) V,

    by Newton iteration over a Jacobi-CG linear solve (the PETSc KSP
    substitute). Communication-agnostic through [comm] hooks; Dirichlet
    nodes are masked out of the Krylov space, keeping the operator
    symmetric. *)

type comm = {
  owned_nodes : int;  (** nodes [0, owned) are owned by this rank *)
  exchange : float array -> unit;  (** refresh halo copies from owners *)
  reduce : float array -> unit;  (** add halo contributions into owners *)
  allreduce : float -> float;
}

val comm_seq : nnodes:int -> comm
(** No-op hooks for single-rank runs. *)

type t

type stats = {
  newton_iterations : int;
  cg_iterations : int;
  residual : float;
  converged : bool;
}

val create :
  nnodes:int ->
  ncells:int ->
  cell_nodes:int array ->
  cell_bary:float array ->
  cell_volume:float array ->
  node_volume:float array ->
  active:bool array ->
  comm:comm ->
  Params.t ->
  t
(** Assembles the linear-element stiffness matrix once; [active] is
    false at Dirichlet nodes. *)

val solve : t -> phi:float array -> ion_charge_density:float array -> stats
(** Newton-solve the potential in place. [phi] must carry the
    Dirichlet values at inactive nodes on entry (never modified
    there). *)

val electron_density : Params.t -> float -> float
(** Boltzmann electron density at a potential (exponent clamped). *)

val stiffness_nnz : t -> int
val node_count : t -> int
