(** Physical constants and configuration for Mini-FEM-PIC.

    Defaults follow the paper's artifact (plasma density 1e18 m^-3,
    duct geometry, constant-rate inlet injection) scaled to sizes a
    single host executes in seconds; ratios such as particles-per-cell
    are preserved by construction. *)

let qe = 1.602176565e-19 (* elementary charge, C *)
let amu = 1.660538921e-27 (* atomic mass unit, kg *)
let eps0 = 8.85418782e-12 (* vacuum permittivity, F/m *)

type t = {
  plasma_den : float;  (** inlet plasma density, m^-3 *)
  ion_velocity : float;  (** injection drift velocity along +z, m/s *)
  ion_charge : float;  (** ion charge, C *)
  ion_mass : float;  (** ion mass, kg *)
  thermal_velocity : float;  (** 1-sigma thermal spread added at injection, m/s *)
  dt : float;  (** time step, s *)
  kte : float;  (** electron temperature, eV (= volts) *)
  phi0 : float;  (** Boltzmann reference potential, V *)
  wall_potential : float;  (** Dirichlet potential on duct walls, V *)
  inlet_potential : float;  (** Dirichlet potential on inlet nodes, V *)
  target_particles : float;  (** steady-state macro-particle count to aim for *)
  max_newton : int;
  newton_tol : float;
  cg_rtol : float;
  seed : int;
}

(* duct of 10x10 um cells: comparable to the Debye length at 1e18 m^-3,
   2 eV, as in the mesh regime of the paper's artifact *)
let default =
  {
    plasma_den = 1e18;
    ion_velocity = 7000.0;
    ion_charge = qe;
    ion_mass = 16.0 *. amu;
    thermal_velocity = 300.0;
    dt = 2e-10;
    kte = 2.0;
    phi0 = 0.0;
    wall_potential = 5.0;
    inlet_potential = 0.0;
    target_particles = 50_000.0;
    max_newton = 20;
    newton_tol = 1e-8;
    cg_rtol = 1e-8;
    seed = 1234;
  }

(** Macro-particle injection rate (particles per step) needed to reach
    [target_particles] at steady state in a duct of length [lz]:
    particles transit in lz / (v dt) steps. *)
let injection_rate t ~lz = t.target_particles *. t.ion_velocity *. t.dt /. lz

(** Macro-particle weight making the injected flux match the physical
    flux n0 * v * A through inlet area [area]. *)
let macro_weight t ~area ~lz =
  let rate = injection_rate t ~lz in
  t.plasma_den *. t.ion_velocity *. area *. t.dt /. rate
