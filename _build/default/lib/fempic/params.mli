(** Physical constants and configuration for Mini-FEM-PIC. Defaults
    follow the paper's artifact regime (1e18 m^-3 plasma density,
    constant-rate inlet injection) at laptop scale. *)

val qe : float
(** Elementary charge, C. *)

val amu : float
(** Atomic mass unit, kg. *)

val eps0 : float
(** Vacuum permittivity, F/m. *)

type t = {
  plasma_den : float;  (** inlet plasma density, m^-3 *)
  ion_velocity : float;  (** injection drift along +z, m/s *)
  ion_charge : float;
  ion_mass : float;
  thermal_velocity : float;  (** 1-sigma spread added at injection, m/s *)
  dt : float;
  kte : float;  (** electron temperature, eV *)
  phi0 : float;  (** Boltzmann reference potential, V *)
  wall_potential : float;  (** Dirichlet value on duct walls, V *)
  inlet_potential : float;
  target_particles : float;  (** steady-state macro-particle count *)
  max_newton : int;
  newton_tol : float;
  cg_rtol : float;
  seed : int;
}

val default : t

val injection_rate : t -> lz:float -> float
(** Macro-particles per step reaching [target_particles] at steady
    state in a duct of length [lz]. *)

val macro_weight : t -> area:float -> lz:float -> float
(** Macro-particle weight matching the physical flux n0 v A through
    inlet area [area]. *)
