(** Binary checkpoint / restart for Mini-FEM-PIC (the artifact's HDF5
    state files). A snapshot carries fields, particles, the
    particle-to-cell map, per-face injection RNG states and carries,
    and the step counter, so a resumed run continues bit-for-bit. *)

exception Corrupt of string

val save : Fempic_sim.t -> string -> unit

val load : Fempic_sim.t -> string -> int
(** Restore into a freshly created simulation on the same mesh and
    parameters; returns the checkpointed step count. Raises
    {!Corrupt} on format or shape mismatches. *)
