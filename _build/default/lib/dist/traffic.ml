(** Communication accounting for the simulated-MPI backend.

    Every simulated exchange counts the bytes and messages a real MPI
    run would move; the weak-scaling figures convert these counts into
    modelled time through {!Opp_perf.Netmodel}. *)

type t = {
  mutable halo_bytes : float;
  mutable halo_messages : int;
  mutable migrate_bytes : float;
  mutable migrate_messages : int;
  mutable migrated_particles : int;
  mutable reductions : int;  (** allreduce-style collectives *)
  mutable solve_bytes : float;  (** field-solver gather/scatter traffic *)
}

let create () =
  {
    halo_bytes = 0.0;
    halo_messages = 0;
    migrate_bytes = 0.0;
    migrate_messages = 0;
    migrated_particles = 0;
    reductions = 0;
    solve_bytes = 0.0;
  }

let reset t =
  t.halo_bytes <- 0.0;
  t.halo_messages <- 0;
  t.migrate_bytes <- 0.0;
  t.migrate_messages <- 0;
  t.migrated_particles <- 0;
  t.reductions <- 0;
  t.solve_bytes <- 0.0

let total_bytes t = t.halo_bytes +. t.migrate_bytes +. t.solve_bytes
let total_messages t = t.halo_messages + t.migrate_messages

let pp fmt t =
  Format.fprintf fmt
    "halo: %.0f B in %d msgs; migration: %.0f B in %d msgs (%d particles); reductions: %d; solve: %.0f B"
    t.halo_bytes t.halo_messages t.migrate_bytes t.migrate_messages t.migrated_particles
    t.reductions t.solve_bytes
