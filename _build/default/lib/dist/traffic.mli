(** Communication accounting for the simulated-MPI backend: every
    simulated exchange counts the bytes and messages a real MPI run
    would move; the weak-scaling figures convert these counts into
    modelled time through [Opp_perf.Netmodel]. *)

type t = {
  mutable halo_bytes : float;
  mutable halo_messages : int;
  mutable migrate_bytes : float;
  mutable migrate_messages : int;
  mutable migrated_particles : int;
  mutable reductions : int;
  mutable solve_bytes : float;
}

val create : unit -> t
val reset : t -> unit
val total_bytes : t -> float
val total_messages : t -> int
val pp : Format.formatter -> t -> unit
