(** Mesh partitioners for the simulated-MPI backend.

    The paper bypasses ParMETIS with a custom geometric partitioning
    "along the principal direction of motion of particles" (after
    PUMIPic); [columns] implements that — partitions extend along the
    motion axis so particles rarely change rank. [slab] is the
    opposite extreme, maximising migration (used to exercise the
    mover), and [rcb] is the classic recursive coordinate bisection. *)

(* Assign ranks [r0, r0+k) to cells [ids], recursively splitting at
   coordinate medians. *)
let rec assign_rcb cell_rank centroid ids r0 k =
  if k <= 1 then Array.iter (fun c -> cell_rank.(c) <- r0) ids
  else begin
    (* split along the axis of largest extent *)
    let extent axis =
      let lo = ref infinity and hi = ref neg_infinity in
      Array.iter
        (fun c ->
          let v = (centroid c).(axis) in
          if v < !lo then lo := v;
          if v > !hi then hi := v)
        ids;
      !hi -. !lo
    in
    let axis = ref 0 in
    if extent 1 > extent !axis then axis := 1;
    if extent 2 > extent !axis then axis := 2;
    let sorted = Array.copy ids in
    Array.sort (fun a b -> compare (centroid a).(!axis) (centroid b).(!axis)) sorted;
    let k_left = k / 2 in
    let cut = Array.length sorted * k_left / k in
    assign_rcb cell_rank centroid (Array.sub sorted 0 cut) r0 k_left;
    assign_rcb cell_rank centroid
      (Array.sub sorted cut (Array.length sorted - cut))
      (r0 + k_left) (k - k_left)
  end

let rcb ~nranks ~ncells ~centroid =
  if nranks <= 0 then invalid_arg "Partition.rcb: nranks must be positive";
  let cell_rank = Array.make ncells 0 in
  assign_rcb cell_rank centroid (Array.init ncells Fun.id) 0 nranks;
  cell_rank

(** Slabs of equal cell count ordered by [coord] (e.g. the z
    centroid). *)
let slab ~nranks ~ncells ~coord =
  if nranks <= 0 then invalid_arg "Partition.slab: nranks must be positive";
  let order = Array.init ncells Fun.id in
  Array.sort (fun a b -> compare (coord a) (coord b)) order;
  let cell_rank = Array.make ncells 0 in
  Array.iteri (fun pos c -> cell_rank.(c) <- pos * nranks / ncells) order;
  cell_rank

(** Columns parallel to the particle-motion axis: an approximately
    square px * py grid of partitions in the transverse plane. *)
let columns ~nranks ~ncells ~x ~y =
  if nranks <= 0 then invalid_arg "Partition.columns: nranks must be positive";
  (* largest factor <= sqrt covers prime counts gracefully *)
  let px = ref 1 in
  for f = 1 to int_of_float (sqrt (float_of_int nranks)) do
    if nranks mod f = 0 then px := f
  done;
  let px = !px in
  let py = nranks / px in
  let order = Array.init ncells Fun.id in
  Array.sort (fun a b -> compare (x a) (x b)) order;
  let cell_rank = Array.make ncells 0 in
  (* split into px strips by x, then each strip into py by y *)
  for strip = 0 to px - 1 do
    let lo = strip * ncells / px and hi = (strip + 1) * ncells / px in
    let strip_cells = Array.sub order lo (hi - lo) in
    Array.sort (fun a b -> compare (y a) (y b)) strip_cells;
    let n = Array.length strip_cells in
    Array.iteri
      (fun pos c -> cell_rank.(c) <- (strip * py) + (pos * py / max n 1))
      strip_cells
  done;
  cell_rank

(** Cells per rank, for balance checks. *)
let rank_counts ~nranks cell_rank =
  let counts = Array.make nranks 0 in
  Array.iter
    (fun r ->
      if r < 0 || r >= nranks then invalid_arg "Partition.rank_counts: rank out of range";
      counts.(r) <- counts.(r) + 1)
    cell_rank;
  counts

(** Max/mean cell-count imbalance of a partition (1.0 = perfect). *)
let imbalance ~nranks cell_rank =
  let counts = rank_counts ~nranks cell_rank in
  let mx = Array.fold_left max 0 counts in
  let mean = float_of_int (Array.length cell_rank) /. float_of_int nranks in
  float_of_int mx /. mean
