lib/dist/tet_part.ml: Array Exch Hashtbl List Opp_mesh Option Tet_mesh
