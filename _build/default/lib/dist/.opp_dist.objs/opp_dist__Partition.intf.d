lib/dist/partition.mli:
