lib/dist/partition.ml: Array Fun
