lib/dist/tet_part.mli: Exch Hashtbl Opp_mesh Tet_mesh
