lib/dist/mailbox.ml: Array List Traffic
