lib/dist/exch.mli: Traffic
