lib/dist/mailbox.mli: Traffic
