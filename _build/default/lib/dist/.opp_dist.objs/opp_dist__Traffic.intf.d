lib/dist/traffic.mli: Format
