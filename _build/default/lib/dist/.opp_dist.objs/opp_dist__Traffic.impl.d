lib/dist/traffic.ml: Format
