lib/dist/exch.ml: Array Hashtbl Traffic
