(** Partitioning a tetrahedral mesh into rank-local meshes with halos:
    each rank gets its owned cells plus a one-deep neighbour halo and
    the nodes those cells touch, owned elements numbered first, node
    ownership to the lowest incident-cell rank, geometry copied from
    the global mesh (exact, not partial). *)

open Opp_mesh

type local_mesh = {
  lm_mesh : Tet_mesh.t;  (** rank-local mesh: owned first, then halo *)
  lm_cell_g : int array;  (** local cell -> global cell *)
  lm_node_g : int array;
  lm_cell_owned : int;
  lm_node_owned : int;
}

type t = {
  nranks : int;
  global : Tet_mesh.t;
  cell_rank : int array;
  node_rank : int array;
  locals : local_mesh array;
  cell_exch : Exch.t;
  node_exch : Exch.t;
  cell_g2l : (int, int) Hashtbl.t array;  (** per rank: global -> local *)
}

val build : Tet_mesh.t -> cell_rank:int array -> nranks:int -> t
