(** A fixed pool of OCaml 5 domains executing fork-join jobs.

    [run pool f] executes [f worker] for every worker index in
    parallel and waits for all of them (the OpenMP-parallel-region
    analogue the thread backend is built on). *)

type t = {
  n : int;
  mutex : Mutex.t;
  start : Condition.t;
  finished : Condition.t;
  mutable generation : int;
  mutable job : int -> unit;
  mutable pending : int;
  mutable failure : exn option;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t array;
}

let size t = t.n

let worker_loop t i =
  let seen_generation = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while t.generation = !seen_generation && not t.shutting_down do
      Condition.wait t.start t.mutex
    done;
    if t.shutting_down then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen_generation := t.generation;
      let job = t.job in
      Mutex.unlock t.mutex;
      let error = try job i; None with e -> Some e in
      Mutex.lock t.mutex;
      (match error with
      | Some e when t.failure = None -> t.failure <- Some e
      | _ -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.mutex
    end
  done

let create n =
  if n <= 0 then invalid_arg "Pool.create: need at least one worker";
  let t =
    {
      n;
      mutex = Mutex.create ();
      start = Condition.create ();
      finished = Condition.create ();
      generation = 0;
      job = ignore;
      pending = 0;
      failure = None;
      shutting_down = false;
      domains = [||];
    }
  in
  t.domains <- Array.init n (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let run t f =
  Mutex.lock t.mutex;
  t.job <- f;
  t.failure <- None;
  t.pending <- t.n;
  t.generation <- t.generation + 1;
  Condition.broadcast t.start;
  while t.pending > 0 do
    Condition.wait t.finished t.mutex
  done;
  let failure = t.failure in
  Mutex.unlock t.mutex;
  match failure with Some e -> raise e | None -> ()

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.start;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains

(** Split [0, n) into [parts] balanced chunks; chunk [i] is [lo, hi). *)
let chunk ~n ~parts i =
  let base = n / parts and rem = n mod parts in
  let lo = (i * base) + min i rem in
  let hi = lo + base + if i < rem then 1 else 0 in
  (lo, hi)
