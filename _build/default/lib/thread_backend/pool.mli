(** A fixed pool of OCaml 5 domains executing fork-join jobs — the
    OpenMP parallel-region analogue the thread backend is built on. *)

type t

val create : int -> t
(** Spawn [n] worker domains; raises [Invalid_argument] for [n <= 0]. *)

val size : t -> int

val run : t -> (int -> unit) -> unit
(** [run pool f] executes [f worker_index] on every worker in parallel
    and waits for all of them; the first worker exception (if any) is
    re-raised here, and the pool remains usable. *)

val shutdown : t -> unit
(** Join all workers. The pool must not be used afterwards. *)

val chunk : n:int -> parts:int -> int -> int * int
(** Balanced chunk [i] of [0, n) split into [parts] ranges. *)
