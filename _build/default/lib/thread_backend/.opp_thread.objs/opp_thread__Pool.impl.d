lib/thread_backend/pool.ml: Array Condition Domain Mutex
