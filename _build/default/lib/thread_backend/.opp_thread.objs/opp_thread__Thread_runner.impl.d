lib/thread_backend/thread_runner.ml: Arg Array Hashtbl List Opp_core Particle Pool Printf Profile Runner Seq Unix View
