lib/thread_backend/pool.mli:
