lib/thread_backend/thread_runner.mli: Arg Opp_core Profile Runner Seq Types
