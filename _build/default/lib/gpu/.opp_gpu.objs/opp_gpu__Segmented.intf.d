lib/gpu/segmented.mli:
