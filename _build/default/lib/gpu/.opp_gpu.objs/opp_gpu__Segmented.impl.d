lib/gpu/segmented.ml: Array
