lib/gpu/gpu_runner.ml: Arg Array Fun List Opp_core Opp_perf Printf Profile Runner Segmented Seq View
