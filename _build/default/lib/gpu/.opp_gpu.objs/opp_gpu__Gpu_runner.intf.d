lib/gpu/gpu_runner.mli: Arg Opp_core Opp_perf Profile Runner Segmented Seq Types
