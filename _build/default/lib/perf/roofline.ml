(** Roofline analysis from a profiling ledger (paper Figures 10, 11).

    Each kernel becomes one point: arithmetic intensity (flop/byte)
    against achieved FP64 rate, classified against the DRAM, cache and
    compute ceilings of a device (the Berkeley ERT roof analogue). *)

type bound = Dram_bound | Cache_bound | Compute_bound | Latency_bound

let bound_to_string = function
  | Dram_bound -> "DRAM"
  | Cache_bound -> "L2/L3"
  | Compute_bound -> "FP64"
  | Latency_bound -> "latency"

type point = {
  kernel : string;
  intensity : float;  (** flop/byte *)
  gflops : float;  (** achieved GFLOP/s *)
  roof_gflops : float;  (** attainable at this intensity *)
  fraction_of_roof : float;
  bound : bound;
}

(** Attainable FP64 rate at intensity [ai] under the DRAM roof. *)
let attainable (d : Device.t) ~ai = Float.min (ai *. d.mem_bw) d.peak_fp64

let classify (d : Device.t) ~ai ~gflops =
  let dram_roof = attainable d ~ai /. 1e9 in
  let cache_roof = Float.min (ai *. d.l3_bw) d.peak_fp64 /. 1e9 in
  (* far below the bandwidth roof on a GPU = serialization, not
     bandwidth: the paper drops AMD DepositCharge from its rooflines
     for exactly this reason *)
  if gflops < 0.2 *. dram_roof then Latency_bound
  else if ai *. d.mem_bw >= d.peak_fp64 then Compute_bound
  else if gflops > 1.05 *. dram_roof && gflops <= cache_roof then Cache_bound
  else Dram_bound

(** Roofline points for every kernel in [profile] that recorded both
    flops and bytes (pure data movers and host phases are skipped, as
    in the paper's plots). *)
let points (d : Device.t) ?(t = Opp_core.Profile.global) () =
  List.filter_map
    (fun (kernel, e) ->
      match Opp_core.Profile.intensity e with
      | None -> None
      | Some ai when e.Opp_core.Profile.flops <= 0.0 || e.Opp_core.Profile.seconds <= 0.0 ->
          ignore ai;
          None
      | Some ai ->
          let gflops = e.Opp_core.Profile.flops /. e.Opp_core.Profile.seconds /. 1e9 in
          let roof = attainable d ~ai /. 1e9 in
          Some
            {
              kernel;
              intensity = ai;
              gflops;
              roof_gflops = roof;
              fraction_of_roof = (if roof > 0.0 then gflops /. roof else 0.0);
              bound = classify d ~ai ~gflops;
            })
    (Opp_core.Profile.entries ~t ())

let pp_points fmt pts =
  Format.fprintf fmt "%-26s %10s %12s %12s %8s %s@." "kernel" "flop/byte" "GFLOP/s"
    "roof GF/s" "%roof" "bound";
  List.iter
    (fun p ->
      Format.fprintf fmt "%-26s %10.3f %12.2f %12.1f %7.1f%% %s@." p.kernel p.intensity
        p.gflops p.roof_gflops
        (100.0 *. p.fraction_of_roof)
        (bound_to_string p.bound))
    pts
