lib/perf/device.mli: Format
