lib/perf/netmodel.ml: Float
