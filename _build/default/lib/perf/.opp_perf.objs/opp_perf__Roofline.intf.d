lib/perf/roofline.mli: Device Format Opp_core
