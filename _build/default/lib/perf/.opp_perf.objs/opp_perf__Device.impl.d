lib/perf/device.ml: Float Format Printf
