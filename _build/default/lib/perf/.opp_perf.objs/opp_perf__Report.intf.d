lib/perf/report.mli: Device Format Opp_core
