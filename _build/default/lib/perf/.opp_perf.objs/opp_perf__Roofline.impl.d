lib/perf/roofline.ml: Device Float Format List Opp_core
