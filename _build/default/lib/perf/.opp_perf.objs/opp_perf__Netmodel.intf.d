lib/perf/netmodel.mli:
