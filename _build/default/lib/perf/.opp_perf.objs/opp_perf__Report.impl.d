lib/perf/report.ml: Device Float Format List Opp_core String
