(** Hardware descriptors for the performance model.

    The paper's systems (Table 2) plus the single-device GPUs of
    Figure 9, with public peak numbers: memory bandwidth, FP64 peak,
    power, and the atomic-operation characteristics that drive the
    AT / UA / SR comparison of section 3.3. The simulator executes
    kernels exactly; these numbers only shape the {e modelled} time. *)

type kind =
  | Cpu of { cores : int }
  | Gpu of { warp : int; fast_atomics : bool }
      (** [fast_atomics]: NVIDIA-style hardware FP64 atomics; AMD
          CDNA's compare-and-swap loops serialize badly under
          contention (the paper's 200x observation) *)

type t = {
  name : string;
  short : string;
  kind : kind;
  mem_bw : float;  (** bytes/s *)
  l3_bw : float;  (** bytes/s, cache roof used in the roofline plots *)
  peak_fp64 : float;  (** flop/s *)
  power : float;  (** watts drawn by this device (or its node share) *)
  launch_overhead : float;  (** seconds per kernel launch *)
  atomic_base : float;  (** seconds per uncontended atomic update *)
  at_conflict : float;  (** extra seconds per serialized standard atomic *)
  ua_conflict : float;  (** ... per unsafe (read-modify-write) atomic *)
  divergence_sensitivity : float;
      (** how much intra-warp branch divergence in the particle mover
          hurts: effective divergence = 1 + sens * (divergence - 1).
          1.0 for CPUs (no warps); >1 on GPUs where divergent walks
          also defeat coalescing and cause replays (the paper's
          Move_Deposit pathology on V100) *)
}

let warp_size d = match d.kind with Cpu _ -> 1 | Gpu g -> g.warp
let is_gpu d = match d.kind with Gpu _ -> true | Cpu _ -> false

(* 2x Intel Xeon Platinum 8268 (Avon node): 48 cores Cascade Lake *)
let xeon_8268_node =
  {
    name = "2x Intel Xeon 8268";
    short = "8268";
    kind = Cpu { cores = 48 };
    mem_bw = 282e9;
    l3_bw = 1.3e12;
    peak_fp64 = 2.2e12;
    power = 475.0;
    launch_overhead = 0.0;
    atomic_base = 8e-9;
    at_conflict = 25e-9;
    ua_conflict = 25e-9;
    divergence_sensitivity = 1.0;
  }

(* 2x AMD EPYC 7742 (ARCHER2 node): 128 cores Rome *)
let epyc_7742_node =
  {
    name = "2x AMD EPYC 7742";
    short = "7742";
    kind = Cpu { cores = 128 };
    mem_bw = 409.6e9;
    l3_bw = 3.0e12;
    peak_fp64 = 4.6e12;
    power = 660.0;
    launch_overhead = 0.0;
    atomic_base = 8e-9;
    at_conflict = 25e-9;
    ua_conflict = 25e-9;
    divergence_sensitivity = 1.0;
  }

(* NVIDIA V100-SXM2-32GB (Bede); power includes its share of the host *)
let v100 =
  {
    name = "NVIDIA V100";
    short = "V100";
    kind = Gpu { warp = 32; fast_atomics = true };
    mem_bw = 900e9;
    l3_bw = 2.2e12;
    peak_fp64 = 7.8e12;
    power = 375.0;
    launch_overhead = 6e-6;
    atomic_base = 1.2e-9;
    at_conflict = 6.0e-9;
    ua_conflict = 8.0e-9;
    divergence_sensitivity = 3.0;
  }

let h100 =
  {
    name = "NVIDIA H100";
    short = "H100";
    kind = Gpu { warp = 32; fast_atomics = true };
    mem_bw = 3.35e12;
    l3_bw = 8.0e12;
    peak_fp64 = 34e12;
    power = 700.0;
    launch_overhead = 5e-6;
    atomic_base = 0.6e-9;
    at_conflict = 1.2e-9;
    ua_conflict = 1.2e-9;
    divergence_sensitivity = 2.0;
  }

let mi210 =
  {
    name = "AMD MI210";
    short = "MI210";
    kind = Gpu { warp = 64; fast_atomics = false };
    mem_bw = 1.6e12;
    l3_bw = 4.0e12;
    peak_fp64 = 22.6e12;
    power = 300.0;
    launch_overhead = 8e-6;
    atomic_base = 2.0e-9;
    (* compare-and-swap retry loops serialize: the paper sees standard
       atomics over 200x slower than UA/SR on contended deposits *)
    at_conflict = 3.0e-6;
    ua_conflict = 8.0e-9;
    (* CDNA wavefronts tolerate the branchy mover better than the
       contended deposit *)
    divergence_sensitivity = 1.2;
  }

(* One Graphics Compute Die of an MI250X (LUMI-G exposes GCDs) *)
let mi250x_gcd =
  {
    name = "AMD MI250X (1 GCD)";
    short = "MI250X";
    kind = Gpu { warp = 64; fast_atomics = false };
    mem_bw = 1.6e12;
    l3_bw = 4.0e12;
    peak_fp64 = 23.9e12;
    power = 299.0;
    launch_overhead = 8e-6;
    atomic_base = 2.0e-9;
    at_conflict = 3.0e-6;
    ua_conflict = 8.0e-9;
    (* CDNA wavefronts tolerate the branchy mover better than the
       contended deposit *)
    divergence_sensitivity = 1.2;
  }

let all = [ xeon_8268_node; epyc_7742_node; v100; h100; mi210; mi250x_gcd ]

(** Roofline-limited kernel time on [d] for a kernel moving [bytes]
    and executing [flops], before latency effects. *)
let kernel_time d ~bytes ~flops =
  Float.max (bytes /. d.mem_bw) (flops /. d.peak_fp64) +. d.launch_overhead

let pp fmt d =
  let kind =
    match d.kind with
    | Cpu c -> Printf.sprintf "CPU %d cores" c.cores
    | Gpu g -> Printf.sprintf "GPU warp=%d %s atomics" g.warp (if g.fast_atomics then "fast" else "slow")
  in
  Format.fprintf fmt "%-22s %-18s %7.0f GB/s %8.1f GF/s %6.0f W" d.name kind (d.mem_bw /. 1e9)
    (d.peak_fp64 /. 1e9) d.power
