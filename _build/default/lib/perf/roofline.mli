(** Roofline analysis from a profiling ledger (paper Figures 10/11):
    each kernel becomes one point — arithmetic intensity against
    achieved FP64 rate — classified against a device's DRAM, cache and
    compute ceilings. *)

type bound = Dram_bound | Cache_bound | Compute_bound | Latency_bound

val bound_to_string : bound -> string

type point = {
  kernel : string;
  intensity : float;
  gflops : float;
  roof_gflops : float;
  fraction_of_roof : float;
  bound : bound;
}

val attainable : Device.t -> ai:float -> float
(** Attainable FP64 rate (flop/s) at intensity [ai] under the DRAM
    roof. *)

val classify : Device.t -> ai:float -> gflops:float -> bound

val points : Device.t -> ?t:Opp_core.Profile.t -> unit -> point list
(** One point per kernel that recorded both flops and bytes (pure data
    movers and host phases are skipped, as in the paper's plots). *)

val pp_points : Format.formatter -> point list -> unit
