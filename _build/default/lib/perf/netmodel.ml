(** Interconnect model for the simulated-MPI scaling studies.

    Message time is the classic latency + size/bandwidth model;
    collectives use a binomial-tree term. The distributed backend
    counts real bytes and messages; this module turns them into
    modelled seconds for the weak-scaling figures. *)

type t = {
  net_name : string;
  latency : float;  (** seconds per message *)
  bandwidth : float;  (** bytes/s per endpoint *)
}

(* HPE Cray Slingshot, 2x100 Gb/s per ARCHER2 node *)
let slingshot_cpu = { net_name = "Slingshot (CPU node)"; latency = 2.0e-6; bandwidth = 25e9 }

(* LUMI-G: 50 Gb/s bi-directional per GCD *)
let slingshot_gpu = { net_name = "Slingshot (per GCD)"; latency = 2.0e-6; bandwidth = 6.25e9 }

(* Mellanox HDR100 / EDR InfiniBand, 100 Gb/s *)
let infiniband = { net_name = "InfiniBand 100Gb"; latency = 1.5e-6; bandwidth = 12.5e9 }

let message_time net ~bytes = net.latency +. (float_of_int bytes /. net.bandwidth)

(** Time for [messages] point-to-point sends moving [bytes] in total,
    assuming the per-rank sends serialize at the endpoint. *)
let p2p_time net ~messages ~bytes =
  (float_of_int messages *. net.latency) +. (float_of_int bytes /. net.bandwidth)

(** Allreduce of [bytes] over [ranks] (recursive doubling). *)
let allreduce_time net ~ranks ~bytes =
  if ranks <= 1 then 0.0
  else
    let rounds = int_of_float (Float.ceil (Float.log2 (float_of_int ranks))) in
    float_of_int rounds *. (net.latency +. (float_of_int bytes /. net.bandwidth)) *. 2.0

(** Barrier (the particle-move finalisation sync of section 4.2). *)
let barrier_time net ~ranks = allreduce_time net ~ranks ~bytes:8
