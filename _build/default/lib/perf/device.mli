(** Hardware descriptors for the performance model: the systems of the
    paper's Table 2 plus the single-device GPUs of Figure 9, with
    public peak numbers. The simulator executes kernels exactly; these
    numbers only shape the {e modelled} time. *)

type kind =
  | Cpu of { cores : int }
  | Gpu of { warp : int; fast_atomics : bool }

type t = {
  name : string;
  short : string;
  kind : kind;
  mem_bw : float;  (** bytes/s *)
  l3_bw : float;  (** bytes/s, cache roof for rooflines *)
  peak_fp64 : float;  (** flop/s *)
  power : float;  (** watts (device or node share) *)
  launch_overhead : float;  (** seconds per kernel launch *)
  atomic_base : float;  (** seconds per uncontended atomic *)
  at_conflict : float;  (** extra seconds per serialized standard atomic *)
  ua_conflict : float;  (** ... per unsafe atomic *)
  divergence_sensitivity : float;
      (** mover divergence amplification: effective = 1 + sens*(d-1) *)
}

val warp_size : t -> int
val is_gpu : t -> bool

val xeon_8268_node : t
val epyc_7742_node : t
val v100 : t
val h100 : t
val mi210 : t
val mi250x_gcd : t
val all : t list

val kernel_time : t -> bytes:float -> flops:float -> float
(** Roofline-limited kernel time plus launch overhead. *)

val pp : Format.formatter -> t -> unit
