(** Interconnect model for the simulated-MPI scaling studies:
    latency + size/bandwidth messages and binomial-tree collectives,
    with the fabrics of the paper's Table 2. *)

type t = { net_name : string; latency : float; bandwidth : float }

val slingshot_cpu : t
(** HPE Cray Slingshot, 2x100 Gb/s per ARCHER2 node. *)

val slingshot_gpu : t
(** LUMI-G: 50 Gb/s bi-directional per GCD. *)

val infiniband : t
(** Mellanox HDR100/EDR, 100 Gb/s. *)

val message_time : t -> bytes:int -> float
val p2p_time : t -> messages:int -> bytes:int -> float
val allreduce_time : t -> ranks:int -> bytes:int -> float
val barrier_time : t -> ranks:int -> float
