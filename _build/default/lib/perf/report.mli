(** Text report generators for the evaluation artefacts: runtime
    breakdowns (Figure 9), scaling series (Figures 13/14), the
    power-equivalent comparison (Figure 15), the systems table
    (Table 2) and GPU utilisation (Table 1). *)

val pp_breakdown : Format.formatter -> (string * Opp_core.Profile.t) list -> unit
(** Per-kernel milliseconds, one column per (label, ledger), rows in
    first-ledger order, with a TOTAL row. *)

type scaling_point = {
  sp_ranks : int;
  sp_compute : float;  (** seconds per step *)
  sp_comm : float;
  sp_label : string;
}

val pp_scaling :
  Format.formatter -> title:string -> (string * scaling_point list) list -> unit
(** Weak-scaling series with parallel efficiency against the smallest
    rank count. *)

val pp_power_equivalent :
  Format.formatter -> title:string -> (string * int * float * float) list -> unit
(** Rows of (system, devices, watts, runtime seconds); speed-ups are
    relative to the first row. *)

val pp_systems : Format.formatter -> Device.t list -> unit

val pp_utilization : Format.formatter -> (string * int * float * float) list -> unit
(** Rows of (configuration, devices, compute s, comm s). *)
