(** Text report generators for the evaluation artefacts: runtime
    breakdowns (Figure 9), scaling series (Figures 13/14), the
    power-equivalent comparison (Figure 15), the systems table
    (Table 2) and GPU utilisation (Table 1). *)

let bar width fraction =
  let n = int_of_float (Float.max 0.0 (Float.min 1.0 fraction) *. float_of_int width) in
  String.make n '#' ^ String.make (width - n) ' '

(** Per-kernel time breakdown across configurations: one column per
    (label, ledger); rows are kernels in first-ledger order, times in
    milliseconds. *)
let pp_breakdown fmt (columns : (string * Opp_core.Profile.t) list) =
  match columns with
  | [] -> ()
  | (_, first) :: _ ->
      let kernels = List.map fst (Opp_core.Profile.entries ~t:first ()) in
      Format.fprintf fmt "%-26s" "kernel (ms)";
      List.iter (fun (label, _) -> Format.fprintf fmt " %14s" label) columns;
      Format.fprintf fmt "@.";
      List.iter
        (fun kernel ->
          Format.fprintf fmt "%-26s" kernel;
          List.iter
            (fun (_, ledger) ->
              let ms =
                match
                  List.assoc_opt kernel (Opp_core.Profile.entries ~t:ledger ())
                with
                | Some e -> e.Opp_core.Profile.seconds *. 1e3
                | None -> 0.0
              in
              Format.fprintf fmt " %14.3f" ms)
            columns;
          Format.fprintf fmt "@.")
        kernels;
      Format.fprintf fmt "%-26s" "TOTAL";
      List.iter
        (fun (_, ledger) ->
          Format.fprintf fmt " %14.3f" (Opp_core.Profile.total_seconds ~t:ledger () *. 1e3))
        columns;
      Format.fprintf fmt "@."

type scaling_point = {
  sp_ranks : int;
  sp_compute : float;  (** seconds per step *)
  sp_comm : float;
  sp_label : string;
}

(** Weak-scaling series: time per configuration with a parallel
    efficiency column relative to the smallest rank count. *)
let pp_scaling fmt ~title (series : (string * scaling_point list) list) =
  Format.fprintf fmt "%s@." title;
  Format.fprintf fmt "%-22s %8s %12s %12s %12s %8s@." "system" "ranks" "compute(ms)"
    "comm(ms)" "total(ms)" "eff";
  List.iter
    (fun (system, points) ->
      let base =
        match points with
        | p :: _ -> p.sp_compute +. p.sp_comm
        | [] -> 1.0
      in
      List.iter
        (fun p ->
          let total = p.sp_compute +. p.sp_comm in
          Format.fprintf fmt "%-22s %8d %12.3f %12.3f %12.3f %7.1f%%  %s@." system p.sp_ranks
            (p.sp_compute *. 1e3) (p.sp_comm *. 1e3) (total *. 1e3)
            (100.0 *. base /. total)
            p.sp_label)
        points;
      Format.fprintf fmt "@.")
    series

(** Power-equivalent comparison: runtimes normalised to the first
    (baseline) system, as in Figure 15. *)
let pp_power_equivalent fmt ~title (rows : (string * int * float * float) list) =
  (* rows: system, device count, total watts, runtime seconds *)
  Format.fprintf fmt "%s@." title;
  match rows with
  | [] -> ()
  | (_, _, _, base_time) :: _ ->
      Format.fprintf fmt "%-24s %8s %9s %12s %9s@." "system" "devices" "power(kW)" "runtime(s)"
        "speed-up";
      List.iter
        (fun (system, devices, watts, seconds) ->
          Format.fprintf fmt "%-24s %8d %9.1f %12.3f %8.2fx  |%s|@." system devices
            (watts /. 1e3) seconds (base_time /. seconds)
            (bar 24 (base_time /. seconds /. 4.0)))
        rows

(** Table 2 analogue: the device database. *)
let pp_systems fmt devices =
  Format.fprintf fmt "%-22s %-22s %10s %11s %8s@." "device" "kind" "mem BW" "peak FP64" "power";
  List.iter (fun d -> Format.fprintf fmt "%a@." Device.pp d) devices

(** Table 1 analogue: modelled GPU utilisation = compute / (compute +
    communication + synchronisation). *)
let pp_utilization fmt (rows : (string * int * float * float) list) =
  (* rows: config, devices, compute seconds, comm seconds *)
  Format.fprintf fmt "%-36s %8s %12s@." "configuration" "devices" "utilization";
  List.iter
    (fun (config, devices, compute, comm) ->
      let u = if compute +. comm > 0.0 then compute /. (compute +. comm) else 1.0 in
      Format.fprintf fmt "%-36s %8d %11.0f%%@." config devices (100.0 *. u))
    rows
