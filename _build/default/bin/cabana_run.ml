(* CabanaPIC driver (electromagnetic two-stream).

   Examples:
     dune exec bin/cabana_run.exe -- --steps 200
     dune exec bin/cabana_run.exe -- --nz 64 --ppc 128 --steps 500
     dune exec bin/cabana_run.exe -- --backend mpi --ranks 4
     dune exec bin/cabana_run.exe -- --validate    (against the structured original) *)

open Cmdliner

let device_of_name = function
  | "v100" -> Some Opp_perf.Device.v100
  | "h100" -> Some Opp_perf.Device.h100
  | "mi210" -> Some Opp_perf.Device.mi210
  | "mi250x" -> Some Opp_perf.Device.mi250x_gcd
  | _ -> None

let run nx ny nz ppc v0 steps backend workers ranks hybrid seed validate =
  let prm =
    {
      Cabana.Cabana_params.default with
      Cabana.Cabana_params.nx;
      ny;
      nz;
      ppc;
      v0;
      seed;
    }
  in
  Printf.printf "CabanaPIC: %d cells, %d particles, dt=%.4f, backend=%s\n%!"
    (Cabana.Cabana_params.ncells prm)
    (Cabana.Cabana_params.nparticles prm)
    (Cabana.Cabana_params.dt prm) backend;
  let profile = Opp_core.Profile.create () in
  let report_every = max 1 (steps / 10) in
  if validate then begin
    let dsl = Cabana.Cabana_sim.create ~prm ~profile () in
    let reference = Cabana_ref.create ~prm () in
    let max_diff = ref 0.0 in
    for s = 1 to steps do
      Cabana.Cabana_sim.step dsl;
      Cabana_ref.step reference;
      let a = (Cabana.Cabana_sim.energies dsl).Cabana.Cabana_sim.e_field in
      let b = (Cabana_ref.energies reference).Cabana_ref.e_field in
      max_diff := Float.max !max_diff (Float.abs (a -. b));
      if s mod report_every = 0 then Printf.printf "step %4d: E=%.6e |dsl-ref|=%.3e\n%!" s a (Float.abs (a -. b))
    done;
    Printf.printf "max |E energy difference| over %d steps: %.3e\n%!" steps !max_diff
  end
  else
    match backend with
    | "mpi" ->
        let dist =
          Apps_dist.Cabana_dist.create ~prm ~nranks:ranks
            ?workers:(if hybrid then Some workers else None)
            ~profile ()
        in
        for s = 1 to steps do
          Apps_dist.Cabana_dist.step dist;
          if s mod report_every = 0 then begin
            let e = Apps_dist.Cabana_dist.energies dist in
            Printf.printf "step %4d: E=%.6e B=%.6e K=%.6e migrated=%d\n%!" s
              e.Cabana.Cabana_sim.e_field e.Cabana.Cabana_sim.b_field
              e.Cabana.Cabana_sim.kinetic dist.Apps_dist.Cabana_dist.last_migrated
          end
        done;
        Format.printf "traffic: %a@." (fun fmt -> Opp_dist.Traffic.pp fmt)
          dist.Apps_dist.Cabana_dist.traffic;
        Apps_dist.Cabana_dist.shutdown dist
    | _ ->
        let runner, cleanup =
          match backend with
          | "seq" -> (Opp_core.Runner.seq ~profile (), fun () -> ())
          | "omp" ->
              let th = Opp_thread.Thread_runner.create ~profile ~workers () in
              (Opp_thread.Thread_runner.runner th, fun () -> Opp_thread.Thread_runner.shutdown th)
          | name -> (
              match device_of_name name with
              | Some device ->
                  let gpu = Opp_gpu.Gpu_runner.create ~profile device in
                  (Opp_gpu.Gpu_runner.runner gpu, fun () -> ())
              | None ->
                  Printf.eprintf "unknown backend '%s' (seq|omp|mpi|v100|h100|mi210|mi250x)\n"
                    name;
                  exit 1)
        in
        let sim = Cabana.Cabana_sim.create ~prm ~runner ~profile () in
        for s = 1 to steps do
          Cabana.Cabana_sim.step sim;
          if s mod report_every = 0 then begin
            let e = Cabana.Cabana_sim.energies sim in
            Printf.printf "step %4d: E=%.6e B=%.6e K=%.6e\n%!" s e.Cabana.Cabana_sim.e_field
              e.Cabana.Cabana_sim.b_field e.Cabana.Cabana_sim.kinetic
          end
        done;
        cleanup ();
        Format.printf "@.%a@." (fun fmt () -> Opp_core.Profile.pp fmt ~t:profile ()) ()

let cmd =
  let nx = Arg.(value & opt int 4 & info [ "nx" ] ~doc:"cells in x") in
  let ny = Arg.(value & opt int 4 & info [ "ny" ] ~doc:"cells in y") in
  let nz = Arg.(value & opt int 32 & info [ "nz" ] ~doc:"cells in z (stream axis)") in
  let ppc = Arg.(value & opt int 32 & info [ "ppc" ] ~doc:"particles per cell") in
  let v0 = Arg.(value & opt float 0.2 & info [ "v0" ] ~doc:"stream speed (fraction of c)") in
  let steps = Arg.(value & opt int 100 & info [ "steps" ] ~doc:"time steps") in
  let backend =
    Arg.(value & opt string "seq" & info [ "backend" ] ~doc:"seq|omp|mpi|v100|h100|mi210|mi250x")
  in
  let workers = Arg.(value & opt int 2 & info [ "workers" ] ~doc:"omp worker domains") in
  let ranks = Arg.(value & opt int 2 & info [ "ranks" ] ~doc:"simulated MPI ranks") in
  let hybrid =
    Arg.(value & flag & info [ "hybrid" ] ~doc:"MPI+OpenMP: per-rank Domains runners")
  in
  let seed = Arg.(value & opt int 99 & info [ "seed" ] ~doc:"RNG seed") in
  let validate =
    Arg.(value & flag & info [ "validate" ] ~doc:"compare against the structured-mesh original")
  in
  Cmd.v
    (Cmd.info "cabana_run" ~doc:"CabanaPIC: electromagnetic two-stream PIC in OP-PIC")
    Term.(
      const run $ nx $ ny $ nz $ ppc $ v0 $ steps $ backend $ workers $ ranks $ hybrid $ seed
      $ validate)

let () = exit (Cmd.eval cmd)
