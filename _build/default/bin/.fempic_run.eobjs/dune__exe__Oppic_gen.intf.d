bin/oppic_gen.mli:
