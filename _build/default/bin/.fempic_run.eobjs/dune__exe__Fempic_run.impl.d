bin/fempic_run.ml: Apps_dist Arg Array Cmd Cmdliner Fempic Format Opp_core Opp_dist Opp_gpu Opp_mesh Opp_perf Opp_thread Printf Term
