bin/fempic_run.mli:
