bin/oppic_gen.ml: Arg Cmd Cmdliner Filename Fun List Opp_codegen Printf String Sys Term
