bin/cabana_run.ml: Apps_dist Arg Cabana Cabana_ref Cmd Cmdliner Float Format Opp_core Opp_dist Opp_gpu Opp_perf Opp_thread Printf Term
