bin/cabana_run.mli:
