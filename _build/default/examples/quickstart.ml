(* Quickstart: build a small duct, run Mini-FEM-PIC for 100 steps and
   print per-step diagnostics. Run with: dune exec examples/quickstart.exe *)

let () =
  let mesh = Opp_mesh.Tet_mesh.build ~nx:6 ~ny:6 ~nz:12 ~lx:6e-5 ~ly:6e-5 ~lz:1.2e-4 in
  Printf.printf "mesh: %d cells, %d nodes, %d inlet faces\n%!" mesh.Opp_mesh.Tet_mesh.ncells
    mesh.Opp_mesh.Tet_mesh.nnodes
    (Array.length mesh.Opp_mesh.Tet_mesh.inlet_faces);
  let prm = { Fempic.Params.default with Fempic.Params.target_particles = 20_000.0 } in
  let sim = Fempic.Fempic_sim.create ~prm mesh in
  for s = 1 to 100 do
    let injected = Fempic.Fempic_sim.step sim in
    if s mod 10 = 0 then begin
      let d = Fempic.Fempic_sim.diagnostics sim in
      let solver =
        match sim.Fempic.Fempic_sim.last_solver_stats with
        | Some st ->
            Printf.sprintf "newton=%d cg=%d conv=%b" st.Fempic.Field_solver.newton_iterations
              st.Fempic.Field_solver.cg_iterations st.Fempic.Field_solver.converged
        | None -> "-"
      in
      Printf.printf
        "step %3d: injected=%4d particles=%6d phi=[%8.3f, %8.3f] |E|=%10.3e  %s\n%!" s injected
        d.Fempic.Fempic_sim.particles d.Fempic.Fempic_sim.min_potential
        d.Fempic.Fempic_sim.max_potential d.Fempic.Fempic_sim.mean_ef_magnitude solver
    end
  done;
  Format.printf "%a" (fun fmt () -> Opp_core.Profile.pp fmt ()) ()
