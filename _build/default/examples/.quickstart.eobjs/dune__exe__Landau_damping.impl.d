examples/landau_damping.ml: Array Float Landau Opp_core Printf String
