examples/landau_damping.mli:
