examples/cabana_twostream.mli:
