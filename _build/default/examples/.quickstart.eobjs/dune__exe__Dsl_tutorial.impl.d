examples/dsl_tutorial.ml: Array Float Opp Opp_core Particle Printf Profile Rng Runner Seq Types View
