examples/cabana_twostream.ml: Cabana Cabana_ref Float Printf
