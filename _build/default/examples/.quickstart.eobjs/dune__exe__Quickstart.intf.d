examples/quickstart.mli:
