examples/quickstart.ml: Array Fempic Format Opp_core Opp_mesh Printf
