examples/weak_scaling_demo.mli:
