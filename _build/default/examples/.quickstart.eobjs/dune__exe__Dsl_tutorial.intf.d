examples/dsl_tutorial.mli:
