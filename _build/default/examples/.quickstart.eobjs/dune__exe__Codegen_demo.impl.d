examples/codegen_demo.ml: List Opp_codegen Printf Str String
