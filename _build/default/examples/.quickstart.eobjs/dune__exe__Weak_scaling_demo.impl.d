examples/weak_scaling_demo.ml: Apps_dist Cabana List Opp_core Opp_dist Printf
