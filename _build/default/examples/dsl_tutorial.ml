(* A from-scratch OP-PIC DSL tutorial, independent of the bundled
   mini-apps: charged tracers advected around a 1-D periodic ring of
   cells under a prescribed field, with per-cell charge deposition.

   It exercises the full public API surface: set / particle-set / map /
   dat declaration, direct and indirect par_loop arguments, global
   reductions, the particle mover, and a second backend (Domains).

   Run with: dune exec examples/dsl_tutorial.exe *)

open Opp_core

let ncells = 64
let nparticles = 1024
let steps = 200

let build_ring runner =
  let ctx = Opp.init () in
  (* the mesh: a ring of cells; each cell knows its two neighbours *)
  let cells = Opp.decl_set ctx ~name:"cells" ncells in
  let c2c_data =
    Array.init (2 * ncells) (fun i ->
        let c = i / 2 in
        if i mod 2 = 0 then (c + ncells - 1) mod ncells else (c + 1) mod ncells)
  in
  let c2c = Opp.decl_map ctx ~name:"c2c" ~from:cells ~to_:cells ~arity:2 (Some c2c_data) in
  (* a prescribed sinusoidal velocity field on the cells *)
  let cell_u =
    Opp.decl_dat ctx ~name:"cell_u" ~set:cells ~dim:1
      (Some
         (Array.init ncells (fun c ->
              1.0 +. (0.5 *. sin (2.0 *. Float.pi *. float_of_int c /. float_of_int ncells)))))
  in
  let cell_charge = Opp.decl_dat ctx ~name:"cell_charge" ~set:cells ~dim:1 None in
  (* the tracers: a position within the cell in [0,1) and a weight *)
  let parts = Opp.decl_particle_set ctx ~name:"tracers" cells in
  let p2c = Opp.decl_map ctx ~name:"p2c" ~from:parts ~to_:cells ~arity:1 None in
  let part_x = Opp.decl_dat ctx ~name:"x" ~set:parts ~dim:1 None in
  let part_w = Opp.decl_dat ctx ~name:"w" ~set:parts ~dim:1 None in
  let rng = Rng.create 2024 in
  ignore (Opp.inject parts nparticles);
  for p = 0 to nparticles - 1 do
    p2c.Types.m_data.(p) <- Rng.int rng ncells;
    part_x.Types.d_data.(p) <- Rng.float rng;
    part_w.Types.d_data.(p) <- 1.0 /. float_of_int nparticles
  done;
  Opp.reset_injected parts;
  (ctx, runner, cells, parts, c2c, p2c, cell_u, cell_charge, part_x, part_w)

(* advance a tracer by u * dt cell-widths, walking right as it crosses
   cell boundaries (the 1-D multi-hop mover) *)
let move_kernel ~dt ~c2c_data views (mc : Seq.move_ctx) =
  let x = views.(0) and u = views.(1) in
  if mc.Seq.hop = 0 then View.inc x 0 (View.get u 0 *. dt);
  if View.get x 0 < 1.0 then mc.Seq.status <- Seq.Move_done
  else begin
    View.inc x 0 (-1.0);
    mc.Seq.cell <- c2c_data.((2 * mc.Seq.cell) + 1);
    mc.Seq.status <- Seq.Need_move
  end

let () =
  let (_, runner, cells, parts, c2c, p2c, cell_u, cell_charge, part_x, part_w) =
    build_ring (Runner.seq ~profile:(Profile.create ()) ())
  in
  let dt = 0.2 in
  for _ = 1 to steps do
    (* deposit charge to the containing cell (indirect increment) *)
    Runner.par_loop runner ~name:"reset" (fun v -> View.fill v.(0) 0.0) cells Opp.all
      [ Opp.arg_dat cell_charge Opp.write ];
    Runner.par_loop runner ~name:"deposit"
      (fun v -> View.inc v.(1) 0 (View.get v.(0) 0))
      parts Opp.all
      [ Opp.arg_dat part_w Opp.read; Opp.arg_dat_p2c cell_charge ~p2c Opp.inc ];
    (* move the tracers *)
    ignore
      (Runner.particle_move runner ~name:"advect"
         (move_kernel ~dt ~c2c_data:c2c.Types.m_data)
         parts ~p2c
         [ Opp.arg_dat part_x Opp.rw; Opp.arg_dat_p2c cell_u ~p2c Opp.read ])
  done;
  (* diagnostics through a global reduction *)
  let total = [| 0.0 |] in
  Runner.par_loop runner ~name:"sum"
    (fun v -> View.inc v.(1) 0 (View.get v.(0) 0))
    cells Opp.all
    [ Opp.arg_dat cell_charge Opp.read; Opp.arg_gbl total Opp.inc ];
  Printf.printf "after %d steps: %d tracers, total deposited weight = %.12f (expect 1.0)\n"
    steps parts.Types.s_size total.(0);
  (* tracers pile up where the velocity field is slow (continuity):
     show the density contrast *)
  let counts = Particle.per_cell_counts parts ~p2c in
  let lo = Array.fold_left min max_int counts and hi = Array.fold_left max 0 counts in
  Printf.printf "per-cell tracer counts span %d..%d (slow cells collect more)\n" lo hi;
  assert (abs_float (total.(0) -. 1.0) < 1e-9)
