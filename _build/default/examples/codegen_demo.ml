(* The translation pipeline of paper section 3.4, end to end: a loop
   manifest for a small deposit + move program goes through the parser,
   IR validation, and every backend template.

   Run with: dune exec examples/codegen_demo.exe *)

let spec =
  {|
program demo
set cells
set nodes
particle_set ions cells
map c2n cells nodes 4
map c2c cells cells 4
map p2c ions cells 1
dat node_charge nodes 1
dat part_lc ions 4
dat part_pos ions 3

loop DepositCharge kernel deposit_kernel over ions iterate all
  arg part_lc read
  arg node_charge idx 0 map c2n p2c p2c inc
  arg node_charge idx 1 map c2n p2c p2c inc
end

move Move kernel move_kernel over ions c2c c2c p2c p2c
  arg part_pos read
  arg part_lc write
end
|}

let () =
  let program = Opp_codegen.Parser.parse spec in
  Printf.printf "parsed '%s': %d loops over %d sets\n\n" program.Opp_codegen.Ir.p_name
    (List.length program.Opp_codegen.Ir.p_loops)
    (List.length program.Opp_codegen.Ir.p_sets);
  List.iter
    (fun target ->
      let code = Opp_codegen.Emit.emit_program program target in
      Printf.printf "=== %s: %d bytes generated ===\n"
        (String.uppercase_ascii (Opp_codegen.Emit.target_to_string target))
        (String.length code);
      (* show the race-handling line each backend chose *)
      String.split_on_char '\n' code
      |> List.filter (fun l ->
             List.exists
               (fun marker ->
                 try
                   ignore (Str.search_forward (Str.regexp_string marker) l 0);
                   true
                 with Not_found -> false)
               [ "scatter"; "atomic"; "halo"; "hole_fill"; "pragma" ])
      |> List.iteri (fun i l -> if i < 4 then Printf.printf "  %s\n" (String.trim l));
      print_newline ())
    Opp_codegen.Emit.all_targets;
  print_endline "full output: dune exec bin/oppic_gen.exe -- examples/specs/fempic.oppic -o generated"
