(* Landau damping: a third application written in the OP-PIC DSL (the
   paper's future work asks for more simulations on top of the
   abstraction). A quiet-start Maxwellian plasma damps a seeded
   Langmuir wave collisionlessly; the measured rate lands within ~1% of
   Landau's kinetic theory at k lambda_D = 0.5.

   Run with: dune exec examples/landau_damping.exe *)

let () =
  let prm = Landau.Landau_sim.default in
  let sim = Landau.Landau_sim.create ~prm () in
  Printf.printf "Landau damping: %d ring cells, %d electrons, k*lambda_D = %.2f\n\n"
    prm.Landau.Landau_sim.nz
    sim.Landau.Landau_sim.parts.Opp_core.Types.s_size
    prm.Landau.Landau_sim.k_ld;
  let steps = 120 in
  let history = Array.make steps 0.0 in
  Printf.printf "%8s %14s  (log-scale bar)\n" "t [1/wp]" "field energy";
  for s = 0 to steps - 1 do
    Landau.Landau_sim.step sim;
    history.(s) <- Landau.Landau_sim.field_energy sim;
    if s mod 8 = 0 then begin
      let bar =
        let floor_e = 1e-7 in
        let len = int_of_float (6.0 *. (log10 (Float.max history.(s) floor_e) +. 7.0)) in
        String.make (max 0 len) '#'
      in
      Printf.printf "%8.1f %14.6e  %s\n" (float_of_int (s + 1) *. prm.Landau.Landau_sim.dt)
        history.(s) bar
    end
  done;
  match Landau.Landau_sim.fit_damping_rate ~dt:prm.Landau.Landau_sim.dt (Array.sub history 0 80) with
  | Some gamma ->
      let theory = Landau.Landau_sim.theoretical_damping_rate prm in
      Printf.printf "\nmeasured damping rate gamma = %.4f\n" gamma;
      Printf.printf "Landau's kinetic theory     = %.4f  (%.1f%% apart)\n" theory
        (100.0 *. Float.abs (gamma -. theory) /. theory)
  | None -> print_endline "no fit"
