(* The simulated-MPI backend in action.

   Part A: the same CabanaPIC two-stream problem on 1, 2 and 4 ranks —
   the physics is identical regardless of the partitioning (the energy
   column repeats to ~1e-12).

   Part B: weak scaling — the global problem grows with the rank
   count; the halo/migration traffic that feeds the interconnect model
   of Figures 13/14 grows with it.

   Run with: dune exec examples/weak_scaling_demo.exe *)

let run_dist ~prm ~ranks ~steps =
  let dist =
    Apps_dist.Cabana_dist.create ~prm ~nranks:ranks ~profile:(Opp_core.Profile.create ()) ()
  in
  Apps_dist.Cabana_dist.run dist ~steps;
  dist

let () =
  let steps = 25 in
  print_endline "Part A: one problem, many partitionings";
  Printf.printf "%6s %16s %12s\n" "ranks" "E energy" "migrated";
  let prm =
    { Cabana.Cabana_params.default with Cabana.Cabana_params.nx = 4; ny = 4; nz = 32; ppc = 24 }
  in
  List.iter
    (fun ranks ->
      let dist = run_dist ~prm ~ranks ~steps in
      Printf.printf "%6d %16.10e %12d\n" ranks
        (Apps_dist.Cabana_dist.energies dist).Cabana.Cabana_sim.e_field
        dist.Apps_dist.Cabana_dist.traffic.Opp_dist.Traffic.migrated_particles)
    [ 1; 2; 4 ];
  print_endline "";
  print_endline "Part B: weak scaling (problem grows with the rank count)";
  Printf.printf "%6s %10s %14s %12s %14s\n" "ranks" "cells" "particles" "migrated" "halo bytes";
  List.iter
    (fun ranks ->
      let prm =
        {
          Cabana.Cabana_params.default with
          Cabana.Cabana_params.nx = 4;
          ny = 4;
          nz = 16 * ranks;
          lz = Cabana.Cabana_params.default.Cabana.Cabana_params.lz *. float_of_int ranks;
          ppc = 24;
        }
      in
      let dist = run_dist ~prm ~ranks ~steps in
      let tr = dist.Apps_dist.Cabana_dist.traffic in
      Printf.printf "%6d %10d %14d %12d %14.0f\n" ranks
        (Cabana.Cabana_params.ncells prm)
        (Apps_dist.Cabana_dist.total_particles dist)
        tr.Opp_dist.Traffic.migrated_particles tr.Opp_dist.Traffic.halo_bytes)
    [ 1; 2; 4 ]
