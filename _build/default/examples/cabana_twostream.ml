(* Two-stream instability with CabanaPIC: runs the OP-PIC DSL version
   and the structured-mesh reference side by side, printing field and
   kinetic energies. The electric field energy should grow
   exponentially out of the noise floor and the two implementations
   should agree to machine precision (the paper's validation).
   Run with: dune exec examples/cabana_twostream.exe *)

let () =
  let prm = Cabana.Cabana_params.default in
  let history = Cabana.Diagnostics.history ~dt:(Cabana.Cabana_params.dt prm) in
  Printf.printf "cabana two-stream: %d cells, %d particles, dt=%.4f\n%!"
    (Cabana.Cabana_params.ncells prm)
    (Cabana.Cabana_params.nparticles prm)
    (Cabana.Cabana_params.dt prm);
  let dsl = Cabana.Cabana_sim.create ~prm () in
  let reference = Cabana_ref.create ~prm () in
  Printf.printf "%6s %14s %14s %14s %12s\n%!" "step" "E energy" "B energy" "kinetic" "|dsl-ref|";
  for s = 1 to 400 do
    Cabana.Cabana_sim.step dsl;
    Cabana_ref.step reference;
    let a = Cabana.Cabana_sim.energies dsl in
    Cabana.Diagnostics.record history ~step:s ~e_field:a.Cabana.Cabana_sim.e_field;
    if s mod 40 = 0 then begin
      let b = Cabana_ref.energies reference in
      let diff = Float.abs (a.Cabana.Cabana_sim.e_field -. b.Cabana_ref.e_field) in
      Printf.printf "%6d %14.6e %14.6e %14.6e %12.3e\n%!" s a.Cabana.Cabana_sim.e_field
        a.Cabana.Cabana_sim.b_field a.Cabana.Cabana_sim.kinetic diff
    end
  done;
  (* growth of the seeded unstable mode against cold-beam theory *)
  let kv = Cabana.Diagnostics.seeded_kv prm in
  (match
     ( Cabana.Diagnostics.theoretical_growth_rate ~kv,
       Cabana.Diagnostics.growth_rate history ~from_step:150 ~to_step:400 )
   with
  | Some theory, Some measured ->
      Printf.printf
        "\nseeded mode k v0/wp = %.2f: growth rate measured %.3f vs cold-beam theory %.3f\n"
        kv measured theory;
      Printf.printf
        "(first-order cell-centred deposition under-resolves the rate; see EXPERIMENTS.md)\n"
  | _ -> ())
