(* Physics tests for CabanaPIC: the shared numerics (interpolation,
   Boris rotation, cell-crossing streamer), conservation laws, vacuum
   electromagnetic waves on the FDTD grid, and the two-stream
   instability itself. *)

open Cabana

let check_float = Alcotest.(check (float 1e-12))

(* --- Cabana_phys unit tests --- *)

let test_stream_stays_inside () =
  let o = [| 0.2; -0.3; 0.0 |] and r = [| 0.3; 0.4; -0.5 |] in
  let trav = Array.make 3 0.0 in
  let face = Cabana_phys.stream o r trav in
  Alcotest.(check int) "no crossing" (-1) face;
  check_float "x" 0.5 o.(0);
  check_float "y" 0.1 o.(1);
  check_float "z" (-0.5) o.(2);
  Array.iter (fun v -> check_float "consumed" 0.0 v) r

let test_stream_crosses_plus_x () =
  let o = [| 0.9; 0.0; 0.0 |] and r = [| 0.4; 0.1; 0.0 |] in
  let trav = Array.make 3 0.0 in
  let face = Cabana_phys.stream o r trav in
  Alcotest.(check int) "+x face" 1 face;
  (* entered the neighbour at its -x side *)
  check_float "re-entry x" (-1.0) o.(0);
  check_float "traversed to the face" 0.1 trav.(0);
  (* a quarter of the displacement remains *)
  Alcotest.(check (float 1e-12)) "remaining x" 0.3 r.(0)

let test_stream_crosses_minus_z_first () =
  (* z reaches its face before x does *)
  let o = [| 0.0; 0.0; -0.9 |] and r = [| 0.5; 0.0; -0.4 |] in
  let trav = Array.make 3 0.0 in
  let face = Cabana_phys.stream o r trav in
  Alcotest.(check int) "-z face" 4 face;
  check_float "re-entry z" 1.0 o.(2)

let prop_stream_conserves_displacement =
  (* summed traversed displacement over a full walk equals the original
     displacement, regardless of how many cells are crossed *)
  QCheck.Test.make ~name:"streamer conserves displacement" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Opp_core.Rng.create seed in
      let u () = (2.0 *. Opp_core.Rng.float rng) -. 1.0 in
      let o = [| u (); u (); u () |] in
      let r = [| 3.0 *. u (); 3.0 *. u (); 3.0 *. u () |] in
      let want = Array.copy r in
      let total = Array.make 3 0.0 in
      let trav = Array.make 3 0.0 in
      let guard = ref 0 in
      let rec walk () =
        incr guard;
        if !guard > 100 then false
        else begin
          let face = Cabana_phys.stream o r trav in
          for d = 0 to 2 do
            total.(d) <- total.(d) +. trav.(d)
          done;
          if face < 0 || Cabana_phys.spent r then true else walk ()
        end
      in
      walk ()
      && Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) total want
      && Array.for_all (fun v -> v >= -1.0 -. 1e-9 && v <= 1.0 +. 1e-9) o)

let prop_boris_preserves_speed_in_pure_b =
  (* with E = 0 the Boris rotation must preserve |v| exactly *)
  QCheck.Test.make ~name:"Boris rotation preserves speed when E=0" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Opp_core.Rng.create seed in
      let u () = (2.0 *. Opp_core.Rng.float rng) -. 1.0 in
      let v = [| u (); u (); u () |] in
      let speed2 = (v.(0) ** 2.0) +. (v.(1) ** 2.0) +. (v.(2) ** 2.0) in
      Cabana_phys.boris ~qmdt2:(u ()) ~ex:0.0 ~ey:0.0 ~ez:0.0 ~bx:(u ()) ~by:(u ()) ~bz:(u ())
        v;
      let speed2' = (v.(0) ** 2.0) +. (v.(1) ** 2.0) +. (v.(2) ** 2.0) in
      Float.abs (speed2 -. speed2') < 1e-12 *. (1.0 +. speed2))

let test_boris_pure_e () =
  (* with B = 0 the push is exactly v += (q/m) E dt *)
  let v = [| 1.0; 2.0; 3.0 |] in
  Cabana_phys.boris ~qmdt2:0.25 ~ex:2.0 ~ey:(-4.0) ~ez:0.0 ~bx:0.0 ~by:0.0 ~bz:0.0 v;
  check_float "vx" 2.0 v.(0);
  check_float "vy" 0.0 v.(1);
  check_float "vz" 3.0 v.(2)

let test_interpolator_uniform_field () =
  (* a uniform field interpolates to itself at any particle position *)
  let e = [| 2.0; -1.0; 0.5 |] and b = [| 0.1; 0.2; 0.3 |] in
  let coeffs = Array.make 18 0.0 in
  Cabana_phys.build_interpolator
    ~get_e:(fun _ c -> e.(c))
    ~get_b:(fun _ c -> b.(c))
    ~set:(fun i v -> coeffs.(i) <- v);
  let ex, ey, ez, bx, by, bz =
    Cabana_phys.eval_fields ~g:(fun i -> coeffs.(i)) ~ox:0.37 ~oy:(-0.81) ~oz:0.12
  in
  check_float "ex" e.(0) ex;
  check_float "ey" e.(1) ey;
  check_float "ez" e.(2) ez;
  check_float "bx" b.(0) bx;
  check_float "by" b.(1) by;
  check_float "bz" b.(2) bz

let test_curls_of_uniform_field_vanish () =
  let ge _ comp = [| 3.0; -2.0; 7.0 |].(comp) in
  let cx, cy, cz = Cabana_phys.curl_e_forward ~ge ~dx:0.1 ~dy:0.2 ~dz:0.3 in
  check_float "curl x" 0.0 cx;
  check_float "curl y" 0.0 cy;
  check_float "curl z" 0.0 cz;
  let cx, cy, cz = Cabana_phys.curl_b_backward ~gb:ge ~dx:0.1 ~dy:0.2 ~dz:0.3 in
  check_float "curl x" 0.0 cx;
  check_float "curl y" 0.0 cy;
  check_float "curl z" 0.0 cz

(* --- simulation-level physics --- *)

let small_prm = { Cabana_params.default with Cabana_params.nz = 16; ppc = 16 }

let test_initial_energies () =
  let sim = Cabana_sim.create ~prm:small_prm ~profile:(Opp_core.Profile.create ()) () in
  let e = Cabana_sim.energies sim in
  check_float "no initial E field" 0.0 e.Cabana_sim.e_field;
  check_float "no initial B field" 0.0 e.Cabana_sim.b_field;
  (* two cold streams at +-v0 with a small perturbation *)
  let expect =
    0.5 *. Cabana_params.n0 *. small_prm.Cabana_params.lx *. small_prm.Cabana_params.ly
    *. small_prm.Cabana_params.lz
    *. (small_prm.Cabana_params.v0 ** 2.0)
  in
  Alcotest.(check bool) "kinetic energy near the cold-stream value" true
    (Float.abs (e.Cabana_sim.kinetic -. expect) < 0.01 *. expect)

let test_particle_count_conserved () =
  let sim = Cabana_sim.create ~prm:small_prm ~profile:(Opp_core.Profile.create ()) () in
  let n0 = sim.Cabana_sim.parts.Opp_core.Types.s_size in
  Cabana_sim.run sim ~steps:50;
  Alcotest.(check int) "periodic box loses nothing" n0 sim.Cabana_sim.parts.Opp_core.Types.s_size

let test_total_energy_conserved () =
  let sim = Cabana_sim.create ~prm:small_prm ~profile:(Opp_core.Profile.create ()) () in
  let total e = e.Cabana_sim.e_field +. e.Cabana_sim.b_field +. e.Cabana_sim.kinetic in
  let e0 = total (Cabana_sim.energies sim) in
  Cabana_sim.run sim ~steps:100;
  let e1 = total (Cabana_sim.energies sim) in
  Alcotest.(check bool)
    (Printf.sprintf "energy drift %.3e within 2%%" (Float.abs (e1 -. e0) /. e0))
    true
    (Float.abs (e1 -. e0) < 0.02 *. e0)

let test_momentum_stays_zero () =
  let sim = Cabana_sim.create ~prm:small_prm ~profile:(Opp_core.Profile.create ()) () in
  let momentum () =
    let p = [| 0.0; 0.0; 0.0 |] in
    for i = 0 to sim.Cabana_sim.parts.Opp_core.Types.s_size - 1 do
      for d = 0 to 2 do
        p.(d) <-
          p.(d)
          +. (sim.Cabana_sim.part_w.Opp_core.Types.d_data.(i)
             *. sim.Cabana_sim.part_vel.Opp_core.Types.d_data.((3 * i) + d))
      done
    done;
    p
  in
  Cabana_sim.run sim ~steps:50;
  let p = momentum () in
  let scale =
    Cabana_params.n0 *. small_prm.Cabana_params.lx *. small_prm.Cabana_params.ly
    *. small_prm.Cabana_params.lz *. small_prm.Cabana_params.v0
  in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "total momentum remains ~0" true (Float.abs v < 0.02 *. scale))
    p

let test_two_stream_instability_grows () =
  (* the point of the setup: field energy must grow out of the noise *)
  let prm = { Cabana_params.default with Cabana_params.nz = 32; ppc = 24 } in
  let sim = Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
  Cabana_sim.run sim ~steps:50;
  let early = (Cabana_sim.energies sim).Cabana_sim.e_field in
  Cabana_sim.run sim ~steps:350;
  let late = (Cabana_sim.energies sim).Cabana_sim.e_field in
  Alcotest.(check bool)
    (Printf.sprintf "E energy grew %.1fx" (late /. early))
    true (late > 5.0 *. early)

let test_vacuum_wave_energy_exchange () =
  (* fields only (no particles): a standing wave sloshes between E and
     B with the total conserved — the leap-frog FDTD core in isolation *)
  let prm = { Cabana_params.default with Cabana_params.nz = 32; ppc = 1 } in
  let sim = Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
  (* drop all particles, then seed Ex = sin(2 pi z / lz) *)
  let parts = sim.Cabana_sim.parts in
  ignore (Opp_core.Particle.remove_flagged parts (Array.make parts.Opp_core.Types.s_size true));
  let mesh = sim.Cabana_sim.mesh in
  for c = 0 to mesh.Opp_mesh.Hex_mesh.ncells - 1 do
    let z = mesh.Opp_mesh.Hex_mesh.cell_centroid.((3 * c) + 2) in
    sim.Cabana_sim.cell_e.Opp_core.Types.d_data.(3 * c) <-
      sin (2.0 *. Float.pi *. z /. prm.Cabana_params.lz)
  done;
  let total e = e.Cabana_sim.e_field +. e.Cabana_sim.b_field in
  let e0 = Cabana_sim.energies sim in
  let t0 = total e0 in
  let min_e = ref e0.Cabana_sim.e_field and max_b = ref 0.0 in
  let max_drift = ref 0.0 in
  for _ = 1 to 100 do
    Cabana_sim.step sim;
    let e = Cabana_sim.energies sim in
    min_e := Float.min !min_e e.Cabana_sim.e_field;
    max_b := Float.max !max_b e.Cabana_sim.b_field;
    max_drift := Float.max !max_drift (Float.abs (total e -. t0))
  done;
  (* the 'drift' is the staggered-time sampling ripple of the
     leap-frog, not secular growth *)
  Alcotest.(check bool)
    (Printf.sprintf "field energy conserved in vacuum (ripple %.2e)" (!max_drift /. t0))
    true
    (!max_drift < 1e-2 *. t0);
  Alcotest.(check bool) "energy sloshes into B" true (!max_b > 0.3 *. t0);
  Alcotest.(check bool) "and out of E" true (!min_e < 0.7 *. t0)

let test_growth_rate_against_dispersion () =
  (* the measured exponential growth rate of the seeded mode against
     the cold-beam dispersion relation. First-order cell-centred
     deposition under-resolves the rate (a known property of this
     discretisation, recorded in EXPERIMENTS.md), so the check is a
     band, not equality *)
  let prm =
    { Cabana_params.default with Cabana_params.nx = 2; ny = 2; nz = 64; ppc = 64; perturb = 1e-3 }
  in
  let sim = Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
  let h = Diagnostics.history ~dt:(Cabana_params.dt prm) in
  for s = 1 to 450 do
    Cabana_sim.step sim;
    Diagnostics.record h ~step:s ~e_field:(Cabana_sim.energies sim).Cabana_sim.e_field
  done;
  let kv = Diagnostics.seeded_kv prm in
  match (Diagnostics.theoretical_growth_rate ~kv, Diagnostics.growth_rate h ~from_step:150 ~to_step:450) with
  | Some theory, Some measured ->
      Alcotest.(check bool)
        (Printf.sprintf "gamma measured %.3f vs theory %.3f (kv=%.2f)" measured theory kv)
        true
        (measured > 0.2 *. theory && measured < 1.5 *. theory)
  | _ -> Alcotest.fail "no growth rate"

let test_stability_threshold () =
  (* dispersion theory: no instability when k v0 > wp for every mode.
     A box short enough that even mode 1 is stable must stay at the
     noise floor *)
  let lz = 1.0 in
  Alcotest.(check bool) "mode 1 is beyond the threshold" true
    (2.0 *. Float.pi /. lz *. 0.2 > 1.0);
  let prm =
    { Cabana_params.default with Cabana_params.nx = 2; ny = 2; nz = 32; lz; ppc = 64 }
  in
  Alcotest.(check bool) "theory says stable" true
    (Diagnostics.theoretical_growth_rate ~kv:(Diagnostics.seeded_kv prm) = None);
  let sim = Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
  Cabana_sim.run sim ~steps:50;
  let early = (Cabana_sim.energies sim).Cabana_sim.e_field in
  Cabana_sim.run sim ~steps:350;
  let late = (Cabana_sim.energies sim).Cabana_sim.e_field in
  Alcotest.(check bool)
    (Printf.sprintf "stays at the noise floor (%.2e -> %.2e)" early late)
    true (late < 3.0 *. early)

let test_dispersion_function_shape () =
  (* gamma(kv): zero outside (0,1), maximal near kv = sqrt(3)/2 *)
  Alcotest.(check bool) "stable above threshold" true
    (Diagnostics.theoretical_growth_rate ~kv:1.2 = None);
  Alcotest.(check bool) "stable at zero" true
    (Diagnostics.theoretical_growth_rate ~kv:0.0 = None);
  let g kv = Option.get (Diagnostics.theoretical_growth_rate ~kv) in
  (* the analytic maximum of the symmetric cold two-stream (total
     plasma frequency normalisation) is gamma = wp/(2 sqrt 2) at
     k v0 = sqrt(3/8) wp *)
  let g_peak = g (sqrt (3.0 /. 8.0)) in
  Alcotest.(check (float 1e-3)) "peak value" (1.0 /. (2.0 *. sqrt 2.0)) g_peak;
  Alcotest.(check bool) "monotone toward the peak" true (g 0.2 < g 0.45 && g 0.45 < g_peak)

let test_single_particle_periodic_transit () =
  (* one particle at constant vz crosses the whole box and returns to
     its starting cell: the periodic c2c6 map in action *)
  let prm = { Cabana_params.default with Cabana_params.nx = 2; ny = 2; nz = 8; ppc = 1 } in
  let sim = Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
  let parts = sim.Cabana_sim.parts in
  ignore (Opp_core.Particle.remove_flagged parts (Array.make parts.Opp_core.Types.s_size true));
  ignore (Opp_core.Particle.inject parts 1);
  Opp_core.Particle.reset_injected parts;
  sim.Cabana_sim.p2c.Opp_core.Types.m_data.(0) <- 0;
  sim.Cabana_sim.part_off.Opp_core.Types.d_data.(2) <- 0.0;
  sim.Cabana_sim.part_vel.Opp_core.Types.d_data.(2) <- 0.3;
  sim.Cabana_sim.part_w.Opp_core.Types.d_data.(0) <- 0.0 (* no self-field *);
  let dz = Cabana_params.dz prm in
  let dt = Cabana_params.dt prm in
  (* steps for one full lap: lz / (v dt) *)
  let steps =
    int_of_float (Float.round (prm.Cabana_params.lz /. (0.3 *. dt))) + 1
  in
  let crossed = ref 0 in
  for _ = 1 to steps do
    Cabana_sim.step sim;
    crossed := !crossed + (match sim.Cabana_sim.last_move with Some r -> r.Opp_core.Seq.mv_total_hops - r.Opp_core.Seq.mv_moved | None -> 0)
  done;
  ignore dz;
  Alcotest.(check bool) "crossed many cells" true (!crossed >= prm.Cabana_params.nz - 1);
  (* still exactly one particle, in a valid cell *)
  Alcotest.(check int) "one particle" 1 parts.Opp_core.Types.s_size;
  let cell = sim.Cabana_sim.p2c.Opp_core.Types.m_data.(0) in
  Alcotest.(check bool) "valid cell" true (cell >= 0 && cell < Cabana_params.ncells prm)

let test_deposit_neutral_current () =
  (* equal and opposite streams at identical positions deposit zero net
     current: seed two mirrored particles in one cell *)
  let prm = { Cabana_params.default with Cabana_params.nx = 2; ny = 2; nz = 4; ppc = 1; perturb = 0.0 } in
  let sim = Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
  let parts = sim.Cabana_sim.parts in
  ignore (Opp_core.Particle.remove_flagged parts (Array.make parts.Opp_core.Types.s_size true));
  ignore (Opp_core.Particle.inject parts 2);
  Opp_core.Particle.reset_injected parts;
  for i = 0 to 1 do
    sim.Cabana_sim.p2c.Opp_core.Types.m_data.(i) <- 0;
    sim.Cabana_sim.part_w.Opp_core.Types.d_data.(i) <- 1.0;
    sim.Cabana_sim.part_vel.Opp_core.Types.d_data.((3 * i) + 2) <-
      (if i = 0 then 0.2 else -0.2)
  done;
  ignore (Cabana_sim.move_deposit sim);
  Cabana_sim.accumulate_current sim;
  let j = sim.Cabana_sim.cell_j.Opp_core.Types.d_data in
  Array.iter (fun v -> Alcotest.(check (float 1e-12)) "net current zero" 0.0 v) j

let suite =
  [
    Alcotest.test_case "stream: stays inside" `Quick test_stream_stays_inside;
    Alcotest.test_case "stream: +x crossing" `Quick test_stream_crosses_plus_x;
    Alcotest.test_case "stream: first crossing wins" `Quick test_stream_crosses_minus_z_first;
    QCheck_alcotest.to_alcotest prop_stream_conserves_displacement;
    QCheck_alcotest.to_alcotest prop_boris_preserves_speed_in_pure_b;
    Alcotest.test_case "boris: pure E" `Quick test_boris_pure_e;
    Alcotest.test_case "interpolator: uniform field" `Quick test_interpolator_uniform_field;
    Alcotest.test_case "curl of uniform field" `Quick test_curls_of_uniform_field_vanish;
    Alcotest.test_case "initial energies" `Quick test_initial_energies;
    Alcotest.test_case "particle count conserved" `Slow test_particle_count_conserved;
    Alcotest.test_case "total energy conserved" `Slow test_total_energy_conserved;
    Alcotest.test_case "momentum stays zero" `Slow test_momentum_stays_zero;
    Alcotest.test_case "two-stream instability grows" `Slow test_two_stream_instability_grows;
    Alcotest.test_case "growth rate vs dispersion" `Slow test_growth_rate_against_dispersion;
    Alcotest.test_case "stability threshold" `Slow test_stability_threshold;
    Alcotest.test_case "dispersion function shape" `Quick test_dispersion_function_shape;
    Alcotest.test_case "vacuum wave E<->B exchange" `Slow test_vacuum_wave_energy_exchange;
    Alcotest.test_case "periodic transit" `Quick test_single_particle_periodic_transit;
    Alcotest.test_case "neutral current deposit" `Quick test_deposit_neutral_current;
  ]
