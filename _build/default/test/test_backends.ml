(* Backend equivalence tests: the Domains (OpenMP-analogue) backend and
   the simulated SIMT (CUDA/HIP-analogue) backend must reproduce the
   sequential reference results on both mini-apps, and their race
   handling (scatter arrays / AT / UA / SR) must behave as designed. *)

open Opp_core
open Opp_core.Types

let check_float = Alcotest.(check (float 1e-12))

(* --- pool --- *)

let test_pool_chunk () =
  (* chunks tile the range exactly *)
  let n = 103 and parts = 4 in
  let covered = Array.make n 0 in
  for i = 0 to parts - 1 do
    let lo, hi = Opp_thread.Pool.chunk ~n ~parts i in
    for e = lo to hi - 1 do
      covered.(e) <- covered.(e) + 1
    done
  done;
  Array.iter (fun c -> Alcotest.(check int) "covered once" 1 c) covered

let test_pool_runs_all_workers () =
  let pool = Opp_thread.Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Opp_thread.Pool.shutdown pool)
    (fun () ->
      let hits = Array.make 3 0 in
      for _ = 1 to 5 do
        Opp_thread.Pool.run pool (fun w -> hits.(w) <- hits.(w) + 1)
      done;
      Array.iter (fun h -> Alcotest.(check int) "each worker ran each job" 5 h) hits)

let test_pool_propagates_exception () =
  let pool = Opp_thread.Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Opp_thread.Pool.shutdown pool)
    (fun () ->
      Alcotest.check_raises "worker failure surfaces" (Failure "boom") (fun () ->
          Opp_thread.Pool.run pool (fun w -> if w = 1 then failwith "boom"));
      (* pool still usable afterwards *)
      let ok = ref 0 in
      Opp_thread.Pool.run pool (fun _ -> incr ok);
      Alcotest.(check bool) "pool survives" true (!ok > 0))

(* --- thread runner semantics --- *)

let test_thread_scatter_increment () =
  (* same indirect-increment loop as the core test, under threads *)
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 100 in
  let nodes = Opp.decl_set ctx ~name:"nodes" 101 in
  let c2n_data = Array.init 200 (fun i -> (i / 2) + (i mod 2)) in
  let c2n = Opp.decl_map ctx ~name:"c2n" ~from:cells ~to_:nodes ~arity:2 (Some c2n_data) in
  let nd = Opp.decl_dat ctx ~name:"nd" ~set:nodes ~dim:1 None in
  let th = Opp_thread.Thread_runner.create ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Opp_thread.Thread_runner.shutdown th)
    (fun () ->
      Opp_thread.Thread_runner.par_loop th ~name:"inc"
        (fun v ->
          View.inc v.(0) 0 1.0;
          View.inc v.(1) 0 1.0)
        cells Opp.all
        [ Opp.arg_dat_i nd ~idx:0 ~map:c2n Opp.inc; Opp.arg_dat_i nd ~idx:1 ~map:c2n Opp.inc ];
      check_float "end node" 1.0 nd.d_data.(0);
      for n = 1 to 99 do
        check_float "interior" 2.0 nd.d_data.(n)
      done)

let test_thread_rejects_indirect_write () =
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 4 in
  let nodes = Opp.decl_set ctx ~name:"nodes" 5 in
  let c2n =
    Opp.decl_map ctx ~name:"c2n" ~from:cells ~to_:nodes ~arity:2
      (Some (Array.init 8 (fun i -> (i / 2) + (i mod 2))))
  in
  let nd = Opp.decl_dat ctx ~name:"nd" ~set:nodes ~dim:1 None in
  let th = Opp_thread.Thread_runner.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Opp_thread.Thread_runner.shutdown th)
    (fun () ->
      Alcotest.check_raises "indirect write rejected"
        (Invalid_argument "bad: indirect OPP_WRITE access to nd is racy under threads")
        (fun () ->
          Opp_thread.Thread_runner.par_loop th ~name:"bad" (fun _ -> ()) cells Opp.all
            [ Opp.arg_dat_i nd ~idx:0 ~map:c2n Opp.write ]))

let test_thread_gbl_reduction () =
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 1000 in
  let d = Opp.decl_dat ctx ~name:"d" ~set:cells ~dim:1 (Some (Array.init 1000 float_of_int)) in
  let th = Opp_thread.Thread_runner.create ~workers:4 () in
  Fun.protect
    ~finally:(fun () -> Opp_thread.Thread_runner.shutdown th)
    (fun () ->
      let acc = [| 0.0 |] in
      Opp_thread.Thread_runner.par_loop th ~name:"sum"
        (fun v -> View.inc v.(1) 0 (View.get v.(0) 0))
        cells Opp.all
        [ Opp.arg_dat d Opp.read; Opp.arg_gbl acc Opp.inc ];
      check_float "sum" (999.0 *. 1000.0 /. 2.0) acc.(0))

(* --- app-level equivalence --- *)

let small_mesh () = Opp_mesh.Tet_mesh.build ~nx:4 ~ny:4 ~nz:8 ~lx:4e-5 ~ly:4e-5 ~lz:8e-5

let fempic_prm = { Fempic.Params.default with Fempic.Params.target_particles = 3000.0 }

let run_fempic runner steps =
  let sim = Fempic.Fempic_sim.create ~prm:fempic_prm ~runner (small_mesh ()) in
  Fempic.Fempic_sim.run sim ~steps;
  sim

let test_fempic_threads_match_seq () =
  let seq_sim = run_fempic (Runner.seq ()) 25 in
  let th = Opp_thread.Thread_runner.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Opp_thread.Thread_runner.shutdown th)
    (fun () ->
      let thr_sim = run_fempic (Opp_thread.Thread_runner.runner th) 25 in
      Alcotest.(check int) "same particle count" seq_sim.Fempic.Fempic_sim.parts.s_size
        thr_sim.Fempic.Fempic_sim.parts.s_size;
      let a = seq_sim.Fempic.Fempic_sim.node_phi.d_data in
      let b = thr_sim.Fempic.Fempic_sim.node_phi.d_data in
      Array.iteri
        (fun i v ->
          Alcotest.(check bool) "phi close" true (Float.abs (v -. b.(i)) < 1e-6 *. (1.0 +. Float.abs v)))
        a)

let test_cabana_threads_match_seq () =
  let prm = { Cabana.Cabana_params.default with Cabana.Cabana_params.nz = 16; ppc = 8 } in
  let seq_sim = Cabana.Cabana_sim.create ~prm () in
  Cabana.Cabana_sim.run seq_sim ~steps:30;
  let e_seq = Cabana.Cabana_sim.energies seq_sim in
  let th = Opp_thread.Thread_runner.create ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Opp_thread.Thread_runner.shutdown th)
    (fun () ->
      let thr_sim = Cabana.Cabana_sim.create ~prm ~runner:(Opp_thread.Thread_runner.runner th) () in
      Cabana.Cabana_sim.run thr_sim ~steps:30;
      let e_thr = Cabana.Cabana_sim.energies thr_sim in
      Alcotest.(check bool) "E energy matches" true
        (Float.abs (e_seq.Cabana.Cabana_sim.e_field -. e_thr.Cabana.Cabana_sim.e_field)
        < 1e-10 *. (1e-12 +. e_seq.Cabana.Cabana_sim.e_field)))

let test_thread_coloring_correct () =
  (* colour-by-colour execution must produce exactly the sequential
     result on the classic cell->node increment *)
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 200 in
  let nodes = Opp.decl_set ctx ~name:"nodes" 201 in
  let c2n_data = Array.init 400 (fun i -> (i / 2) + (i mod 2)) in
  let c2n = Opp.decl_map ctx ~name:"c2n" ~from:cells ~to_:nodes ~arity:2 (Some c2n_data) in
  let nd = Opp.decl_dat ctx ~name:"nd" ~set:nodes ~dim:1 None in
  let acc = [| 0.0 |] in
  let th = Opp_thread.Thread_runner.create ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Opp_thread.Thread_runner.shutdown th)
    (fun () ->
      Opp_thread.Thread_runner.par_loop_colored th ~name:"inc"
        (fun v ->
          View.inc v.(0) 0 1.0;
          View.inc v.(1) 0 1.0;
          View.inc v.(2) 0 2.0)
        cells Opp.all
        [
          Opp.arg_dat_i nd ~idx:0 ~map:c2n Opp.inc;
          Opp.arg_dat_i nd ~idx:1 ~map:c2n Opp.inc;
          Opp.arg_gbl acc Opp.inc;
        ];
      Alcotest.(check (float 1e-12)) "gbl reduced" 400.0 acc.(0);
      Alcotest.(check (float 1e-12)) "end node" 1.0 nd.d_data.(0);
      for n = 1 to 199 do
        Alcotest.(check (float 1e-12)) "interior" 2.0 nd.d_data.(n)
      done)

let test_thread_coloring_counts () =
  (* a shared-node chain needs exactly two colours *)
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 50 in
  let nodes = Opp.decl_set ctx ~name:"nodes" 51 in
  let c2n_data = Array.init 100 (fun i -> (i / 2) + (i mod 2)) in
  let c2n = Opp.decl_map ctx ~name:"c2n" ~from:cells ~to_:nodes ~arity:2 (Some c2n_data) in
  let nd = Opp.decl_dat ctx ~name:"nd" ~set:nodes ~dim:1 None in
  let colors, ncolors =
    Opp_thread.Thread_runner.build_coloring ~lo:0 ~hi:50
      [ Opp.arg_dat_i nd ~idx:0 ~map:c2n Opp.inc; Opp.arg_dat_i nd ~idx:1 ~map:c2n Opp.inc ]
  in
  Alcotest.(check int) "two colours for a chain" 2 ncolors;
  (* adjacent cells never share a colour *)
  for c = 1 to 49 do
    Alcotest.(check bool) "neighbours differ" true (colors.(c) <> colors.(c - 1))
  done

(* --- segmented reduction --- *)

let test_segmented_basic () =
  let sr = Opp_gpu.Segmented.create () in
  Opp_gpu.Segmented.add sr ~key:3 ~value:1.0;
  Opp_gpu.Segmented.add sr ~key:1 ~value:2.0;
  Opp_gpu.Segmented.add sr ~key:3 ~value:4.0;
  let target = Array.make 5 10.0 in
  let distinct = Opp_gpu.Segmented.apply sr target in
  Alcotest.(check int) "distinct keys" 2 distinct;
  check_float "reduced key 3" 15.0 target.(3);
  check_float "reduced key 1" 12.0 target.(1);
  check_float "untouched" 10.0 target.(0);
  Alcotest.(check int) "cleared" 0 (Opp_gpu.Segmented.length sr)

let prop_segmented_matches_direct =
  QCheck.Test.make ~name:"segmented reduction equals direct accumulation" ~count:100
    QCheck.(pair (int_range 1 500) (int_range 0 100_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let sr = Opp_gpu.Segmented.create () in
      let direct = Array.make 20 0.0 and via_sr = Array.make 20 0.0 in
      for _ = 1 to n do
        let key = Rng.int rng 20 in
        let v = Rng.float rng -. 0.5 in
        direct.(key) <- direct.(key) +. v;
        Opp_gpu.Segmented.add sr ~key ~value:v
      done;
      ignore (Opp_gpu.Segmented.apply sr via_sr);
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) direct via_sr)

(* --- simulated GPU --- *)

let gpu_fixture ?(n = 256) () =
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 1 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let p2c = Opp.decl_map ctx ~name:"p2c" ~from:parts ~to_:cells ~arity:1 None in
  let target = Opp.decl_dat ctx ~name:"t" ~set:cells ~dim:1 None in
  ignore (Opp.inject parts n);
  for i = 0 to n - 1 do
    p2c.m_data.(i) <- 0
  done;
  (ctx, cells, parts, p2c, target)

let test_gpu_conflict_counting () =
  (* 256 particles all incrementing cell 0: with warp 32, every lane
     but the first in each warp conflicts -> 256 - 8 = 248 *)
  let _, _, parts, p2c, target = gpu_fixture () in
  let gpu = Opp_gpu.Gpu_runner.create ~mode:Opp_gpu.Gpu_runner.AT Opp_perf.Device.v100 in
  Opp_gpu.Gpu_runner.par_loop gpu ~name:"deposit"
    (fun v -> View.inc v.(0) 0 1.0)
    parts Opp.all
    [ Opp.arg_dat_p2c target ~p2c Opp.inc ];
  check_float "sum correct" 256.0 target.d_data.(0);
  Alcotest.(check int) "conflicts" 248 gpu.Opp_gpu.Gpu_runner.last_conflicts

let test_gpu_sr_matches_at () =
  let _, _, parts, p2c, target = gpu_fixture () in
  let gpu = Opp_gpu.Gpu_runner.create ~mode:Opp_gpu.Gpu_runner.SR Opp_perf.Device.mi250x_gcd in
  Opp_gpu.Gpu_runner.par_loop gpu ~name:"deposit"
    (fun v -> View.inc v.(0) 0 2.0)
    parts Opp.all
    [ Opp.arg_dat_p2c target ~p2c Opp.inc ];
  check_float "segmented deposit sums" 512.0 target.d_data.(0)

let test_gpu_modeled_atomics_ranking () =
  (* same contended deposit: modelled time must rank AT >> UA >= SR on
     an AMD device (the paper's section 3.3 finding) *)
  (* large enough that atomic traffic, not launch overhead, dominates *)
  let time_with mode =
    let _, _, parts, p2c, target = gpu_fixture ~n:100_000 () in
    let profile = Profile.create () in
    let gpu = Opp_gpu.Gpu_runner.create ~profile ~mode Opp_perf.Device.mi250x_gcd in
    Opp_gpu.Gpu_runner.par_loop gpu ~name:"deposit"
      (fun v -> View.inc v.(0) 0 1.0)
      parts Opp.all
      [ Opp.arg_dat_p2c target ~p2c Opp.inc ];
    Profile.total_seconds ~t:profile ()
  in
  let at = time_with Opp_gpu.Gpu_runner.AT in
  let ua = time_with Opp_gpu.Gpu_runner.UA in
  let sr = time_with Opp_gpu.Gpu_runner.SR in
  Alcotest.(check bool) "AT much slower than UA on AMD" true (at > 10.0 *. ua);
  Alcotest.(check bool) "SR comparable to UA" true (sr < 10.0 *. ua)

let test_gpu_cabana_matches_seq () =
  let prm = { Cabana.Cabana_params.default with Cabana.Cabana_params.nz = 16; ppc = 8 } in
  let seq_sim = Cabana.Cabana_sim.create ~prm () in
  Cabana.Cabana_sim.run seq_sim ~steps:20;
  let gpu = Opp_gpu.Gpu_runner.create ~mode:Opp_gpu.Gpu_runner.AT Opp_perf.Device.v100 in
  let gpu_sim = Cabana.Cabana_sim.create ~prm ~runner:(Opp_gpu.Gpu_runner.runner gpu) () in
  Cabana.Cabana_sim.run gpu_sim ~steps:20;
  let a = Cabana.Cabana_sim.energies seq_sim and b = Cabana.Cabana_sim.energies gpu_sim in
  (* AT executes increments in reference order: bitwise equality *)
  Alcotest.(check (float 0.0)) "identical E energy" a.Cabana.Cabana_sim.e_field
    b.Cabana.Cabana_sim.e_field

let test_gpu_divergence_tracked () =
  (* two particles in one warp, one walking 9 cells, one staying put:
     the warp retires at 10 hops -> divergence = 2*10 / 11 *)
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 10 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let p2c = Opp.decl_map ctx ~name:"p2c" ~from:parts ~to_:cells ~arity:1 None in
  let target = Opp.decl_dat ctx ~name:"target" ~set:parts ~dim:1 None in
  ignore (Opp.inject parts 2);
  p2c.m_data.(0) <- 0;
  target.d_data.(0) <- 9.0;
  p2c.m_data.(1) <- 5;
  target.d_data.(1) <- 5.0;
  let kern views (mc : Seq.move_ctx) =
    let tgt = int_of_float (View.get views.(0) 0) in
    if mc.Seq.cell = tgt then mc.Seq.status <- Seq.Move_done
    else begin
      mc.Seq.cell <- mc.Seq.cell + 1;
      mc.Seq.status <- Seq.Need_move
    end
  in
  let gpu = Opp_gpu.Gpu_runner.create Opp_perf.Device.v100 in
  let r =
    Opp_gpu.Gpu_runner.particle_move gpu ~name:"move" kern parts ~p2c
      [ Opp.arg_dat target Opp.read ]
  in
  Alcotest.(check int) "hops" 11 r.Seq.mv_total_hops;
  (* raw divergence 2 warps * 32 lanes * max-hops / 11 hops, amplified
     by the device's sensitivity *)
  let raw = 320.0 /. 11.0 in
  let sens = Opp_perf.Device.v100.Opp_perf.Device.divergence_sensitivity in
  Alcotest.(check (float 1e-9)) "divergence factor"
    (1.0 +. (sens *. (raw -. 1.0)))
    gpu.Opp_gpu.Gpu_runner.last_divergence

let suite =
  [
    Alcotest.test_case "pool: chunks tile" `Quick test_pool_chunk;
    Alcotest.test_case "pool: all workers run" `Quick test_pool_runs_all_workers;
    Alcotest.test_case "pool: exception propagation" `Quick test_pool_propagates_exception;
    Alcotest.test_case "threads: scatter-array increments" `Quick test_thread_scatter_increment;
    Alcotest.test_case "threads: indirect write rejected" `Quick test_thread_rejects_indirect_write;
    Alcotest.test_case "threads: global reduction" `Quick test_thread_gbl_reduction;
    Alcotest.test_case "threads: coloring correct" `Quick test_thread_coloring_correct;
    Alcotest.test_case "threads: coloring counts" `Quick test_thread_coloring_counts;
    Alcotest.test_case "threads: fempic matches seq" `Slow test_fempic_threads_match_seq;
    Alcotest.test_case "threads: cabana matches seq" `Slow test_cabana_threads_match_seq;
    Alcotest.test_case "segmented: basic" `Quick test_segmented_basic;
    QCheck_alcotest.to_alcotest prop_segmented_matches_direct;
    Alcotest.test_case "gpu: conflict counting" `Quick test_gpu_conflict_counting;
    Alcotest.test_case "gpu: SR deposit correct" `Quick test_gpu_sr_matches_at;
    Alcotest.test_case "gpu: AT >> UA on AMD (model)" `Quick test_gpu_modeled_atomics_ranking;
    Alcotest.test_case "gpu: cabana bitwise vs seq" `Slow test_gpu_cabana_matches_seq;
    Alcotest.test_case "gpu: divergence tracked" `Quick test_gpu_divergence_tracked;
  ]
