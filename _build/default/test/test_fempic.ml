(* Physics tests for Mini-FEM-PIC: injection bookkeeping, charge
   conservation, the barycentric mover, the nonlinear field solver
   (including a method-of-manufactured-solutions convergence check),
   and end-to-end behaviour of the duct flow. *)

open Fempic
open Opp_core

let mesh () = Opp_mesh.Tet_mesh.build ~nx:4 ~ny:4 ~nz:8 ~lx:4e-5 ~ly:4e-5 ~lz:8e-5
let prm = { Params.default with Params.target_particles = 5_000.0 }

let make ?(prm = prm) ?use_direct_hop () =
  Fempic_sim.create ~prm ~profile:(Profile.create ())
    ~runner:(Runner.seq ~profile:(Profile.create ()) ())
    ?use_direct_hop (mesh ())

let test_injection_rate () =
  let sim = make () in
  let steps = 40 in
  let injected = ref 0 in
  for _ = 1 to steps do
    injected := !injected + Fempic_sim.inject_particles sim
  done;
  (* per-face carry accumulators make the total exact over time *)
  let rate = Array.fold_left ( +. ) 0.0 sim.Fempic_sim.face_rate in
  let expected = rate *. float_of_int steps in
  Alcotest.(check bool)
    (Printf.sprintf "injected %d ~ rate*steps %.1f" !injected expected)
    true
    (Float.abs (float_of_int !injected -. expected)
    < float_of_int (Array.length (mesh ()).Opp_mesh.Tet_mesh.inlet_faces));
  (* every injected particle sits on the inlet plane with +z drift *)
  for p = 0 to sim.Fempic_sim.parts.Types.s_size - 1 do
    let z = sim.Fempic_sim.part_pos.Types.d_data.((3 * p) + 2) in
    Alcotest.(check bool) "z near inlet" true (z >= 0.0)
  done

let test_macro_weight_matches_flux () =
  let sim = make () in
  (* spwt * rate = n0 * v * A * dt (physical flux balance) *)
  let area = 4e-5 *. 4e-5 in
  let flux = prm.Params.plasma_den *. prm.Params.ion_velocity *. area *. prm.Params.dt in
  let rate = Array.fold_left ( +. ) 0.0 sim.Fempic_sim.face_rate in
  Alcotest.(check bool) "weight x rate = physical flux" true
    (Float.abs ((sim.Fempic_sim.spwt *. rate) -. flux) < 1e-9 *. flux)

let test_charge_conservation () =
  let sim = make () in
  ignore (Fempic_sim.prefill sim);
  Fempic_sim.calc_pos_vel sim;
  ignore (Fempic_sim.move sim);
  Fempic_sim.deposit_charge sim;
  let total = Array.fold_left ( +. ) 0.0 sim.Fempic_sim.node_charge.Types.d_data in
  let expected =
    float_of_int sim.Fempic_sim.parts.Types.s_size *. sim.Fempic_sim.spwt
    *. prm.Params.ion_charge
  in
  Alcotest.(check bool)
    (Printf.sprintf "deposited %.6e = particles x q %.6e" total expected)
    true
    (Float.abs (total -. expected) < 1e-9 *. expected)

let test_lc_weights_valid () =
  let sim = make () in
  ignore (Fempic_sim.prefill sim);
  Fempic_sim.calc_pos_vel sim;
  ignore (Fempic_sim.move sim);
  for p = 0 to sim.Fempic_sim.parts.Types.s_size - 1 do
    let s = ref 0.0 in
    for i = 0 to 3 do
      let w = sim.Fempic_sim.part_lc.Types.d_data.((4 * p) + i) in
      Alcotest.(check bool) "weight in range" true (w >= -1e-9 && w <= 1.0 +. 1e-9);
      s := !s +. w
    done;
    Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 !s
  done

let test_prefill_count_and_distribution () =
  let sim = make () in
  let n = Fempic_sim.prefill sim in
  Alcotest.(check bool) "close to target" true
    (Float.abs (float_of_int n -. prm.Params.target_particles)
    < 0.01 *. prm.Params.target_particles);
  (* particles land in the cells they claim: move must keep everyone *)
  let r = Fempic_sim.move sim in
  Alcotest.(check int) "nobody removed by the first locate" 0 r.Seq.mv_removed;
  (* z distribution spans the duct *)
  let zs =
    Array.init sim.Fempic_sim.parts.Types.s_size (fun p ->
        sim.Fempic_sim.part_pos.Types.d_data.((3 * p) + 2))
  in
  let mean = Array.fold_left ( +. ) 0.0 zs /. float_of_int (Array.length zs) in
  Alcotest.(check bool) "mean z near the middle" true
    (Float.abs (mean -. 4e-5) < 0.1 *. 8e-5)

let test_ballistic_transit () =
  (* with the field switched off, injected ions drift through in
     lz / (v dt) steps and the population plateaus *)
  let prm0 =
    { prm with Params.plasma_den = 0.0; wall_potential = 0.0; thermal_velocity = 0.0 }
  in
  let sim = make ~prm:prm0 () in
  let transit =
    int_of_float (8e-5 /. (prm0.Params.ion_velocity *. prm0.Params.dt)) + 2
  in
  for _ = 1 to transit do
    ignore (Fempic_sim.step sim)
  done;
  let n_at_transit = sim.Fempic_sim.parts.Types.s_size in
  for _ = 1 to 20 do
    ignore (Fempic_sim.step sim)
  done;
  let n_later = sim.Fempic_sim.parts.Types.s_size in
  Alcotest.(check bool)
    (Printf.sprintf "population plateaus (%d then %d)" n_at_transit n_later)
    true
    (abs (n_later - n_at_transit) < n_at_transit / 10);
  Alcotest.(check bool) "population near the steady-state target" true
    (Float.abs (float_of_int n_later -. prm0.Params.target_particles)
    < 0.15 *. prm0.Params.target_particles)

let test_dh_equals_mh () =
  (* direct-hop is an optimization, not a different algorithm: both
     movers must place every particle in the same cell *)
  let a = make ~use_direct_hop:false () in
  let b = make ~use_direct_hop:true () in
  ignore (Fempic_sim.prefill a);
  ignore (Fempic_sim.prefill b);
  for _ = 1 to 5 do
    ignore (Fempic_sim.step a);
    ignore (Fempic_sim.step b)
  done;
  Alcotest.(check int) "same particle count" a.Fempic_sim.parts.Types.s_size
    b.Fempic_sim.parts.Types.s_size;
  for p = 0 to a.Fempic_sim.parts.Types.s_size - 1 do
    Alcotest.(check int) "same cell" a.Fempic_sim.p2c.Types.m_data.(p)
      b.Fempic_sim.p2c.Types.m_data.(p)
  done

let test_electric_field_of_linear_potential () =
  let sim = make () in
  (* phi = a . x  =>  E = -a on every cell *)
  let a = [| 3.0e4; -2.0e4; 5.0e4 |] in
  let m = sim.Fempic_sim.mesh in
  for n = 0 to m.Opp_mesh.Tet_mesh.nnodes - 1 do
    sim.Fempic_sim.node_phi.Types.d_data.(n) <-
      (a.(0) *. m.Opp_mesh.Tet_mesh.node_pos.(3 * n))
      +. (a.(1) *. m.Opp_mesh.Tet_mesh.node_pos.((3 * n) + 1))
      +. (a.(2) *. m.Opp_mesh.Tet_mesh.node_pos.((3 * n) + 2))
  done;
  Fempic_sim.compute_electric_field sim;
  for c = 0 to m.Opp_mesh.Tet_mesh.ncells - 1 do
    for d = 0 to 2 do
      Alcotest.(check bool) "E = -grad phi" true
        (Float.abs (sim.Fempic_sim.cell_ef.Types.d_data.((3 * c) + d) +. a.(d))
        < 1e-6 *. Float.abs a.(d))
    done
  done

let test_solver_vacuum_max_principle () =
  (* no charge at all: the potential solves Laplace and must lie
     between the boundary values *)
  let prm0 = { prm with Params.plasma_den = 0.0; wall_potential = 5.0 } in
  let sim = make ~prm:prm0 () in
  let stats = Fempic_sim.solve_potential sim in
  Alcotest.(check bool) "converged" true stats.Field_solver.converged;
  Array.iter
    (fun v -> Alcotest.(check bool) "0 <= phi <= 5" true (v >= -1e-9 && v <= 5.0 +. 1e-9))
    sim.Fempic_sim.node_phi.Types.d_data

let test_solver_manufactured_solution () =
  (* MMS: phi0 = sin(pi x/lx) sin(pi y/ly) cos(pi z/lz) satisfies the
     wall/inlet Dirichlet data we impose and has zero normal derivative
     at the open outlet; solving with rho0 = -eps0 lap phi0 recovers
     phi0 to discretization accuracy *)
  let lx = 4e-5 and ly = 4e-5 and lz = 8e-5 in
  let m = Opp_mesh.Tet_mesh.build ~nx:6 ~ny:6 ~nz:12 ~lx ~ly ~lz in
  let phi_star x y z =
    sin (Float.pi *. x /. lx) *. sin (Float.pi *. y /. ly) *. cos (Float.pi *. z /. lz)
  in
  let k2 =
    ((Float.pi /. lx) ** 2.0) +. ((Float.pi /. ly) ** 2.0) +. ((Float.pi /. lz) ** 2.0)
  in
  let nnodes = m.Opp_mesh.Tet_mesh.nnodes in
  let active = Array.make nnodes true in
  let phi = Array.make nnodes 0.0 in
  let rho = Array.make nnodes 0.0 in
  Array.iteri
    (fun n kind ->
      let x = m.Opp_mesh.Tet_mesh.node_pos.(3 * n)
      and y = m.Opp_mesh.Tet_mesh.node_pos.((3 * n) + 1)
      and z = m.Opp_mesh.Tet_mesh.node_pos.((3 * n) + 2) in
      rho.(n) <- Params.eps0 *. k2 *. phi_star x y z;
      match kind with
      | Opp_mesh.Tet_mesh.Wall | Opp_mesh.Tet_mesh.Inlet ->
          active.(n) <- false;
          phi.(n) <- phi_star x y z (* = 0 on these planes, kept exact *)
      | Opp_mesh.Tet_mesh.Outlet | Opp_mesh.Tet_mesh.Interior -> ())
    m.Opp_mesh.Tet_mesh.node_kind;
  (* plasma_den = 0 switches the Boltzmann term off: one linear solve *)
  let solver =
    Field_solver.create ~nnodes ~ncells:m.Opp_mesh.Tet_mesh.ncells
      ~cell_nodes:m.Opp_mesh.Tet_mesh.cell_nodes ~cell_bary:m.Opp_mesh.Tet_mesh.cell_bary
      ~cell_volume:m.Opp_mesh.Tet_mesh.cell_volume ~node_volume:m.Opp_mesh.Tet_mesh.node_volume
      ~active
      ~comm:(Field_solver.comm_seq ~nnodes)
      { prm with Params.plasma_den = 0.0 }
  in
  let stats = Field_solver.solve solver ~phi ~ion_charge_density:rho in
  Alcotest.(check bool) "converged" true stats.Field_solver.converged;
  let max_err = ref 0.0 in
  for n = 0 to nnodes - 1 do
    let x = m.Opp_mesh.Tet_mesh.node_pos.(3 * n)
    and y = m.Opp_mesh.Tet_mesh.node_pos.((3 * n) + 1)
    and z = m.Opp_mesh.Tet_mesh.node_pos.((3 * n) + 2) in
    max_err := Float.max !max_err (Float.abs (phi.(n) -. phi_star x y z))
  done;
  (* linear elements on this resolution: a few percent of the unit
     amplitude *)
  Alcotest.(check bool) (Printf.sprintf "MMS max error %.4f" !max_err) true (!max_err < 0.08)

let test_boltzmann_electron_response () =
  (* the Boltzmann closure sets phi ~ kTe ln(n_i/n0): an under-dense
     duct (still filling) pulls the interior potential well below zero,
     while the flux-matched prefilled duct is quasi-neutral (n_i = n0
     by construction of the macro weight), so phi ~ 0 there *)
  (* needs a cross-section wider than a few Debye lengths for the
     interior to decouple from the wall potential *)
  let wide = Opp_mesh.Tet_mesh.build ~nx:6 ~ny:6 ~nz:12 ~lx:6e-5 ~ly:6e-5 ~lz:1.2e-4 in
  let underdense =
    Fempic_sim.create
      ~prm:{ prm with Params.target_particles = 20_000.0 }
      ~profile:(Profile.create ())
      ~runner:(Runner.seq ~profile:(Profile.create ()) ())
      wide
  in
  for _ = 1 to 10 do
    ignore (Fempic_sim.step underdense)
  done;
  let d = Fempic_sim.diagnostics underdense in
  Alcotest.(check bool)
    (Printf.sprintf "under-dense interior negative (%.3f)" d.Fempic_sim.min_potential)
    true
    (d.Fempic_sim.min_potential < -0.2);
  Alcotest.(check bool) "bounded by the wall value" true
    (d.Fempic_sim.max_potential <= prm.Params.wall_potential +. 1e-9);
  let neutral = make () in
  ignore (Fempic_sim.prefill neutral);
  for _ = 1 to 5 do
    ignore (Fempic_sim.step neutral)
  done;
  let d = Fempic_sim.diagnostics neutral in
  Alcotest.(check bool)
    (Printf.sprintf "prefilled duct quasi-neutral (%.3f)" d.Fempic_sim.min_potential)
    true
    (Float.abs d.Fempic_sim.min_potential < 1.0)

let test_steady_state_population () =
  let sim = make () in
  ignore (Fempic_sim.prefill sim);
  Fempic_sim.run sim ~steps:60;
  let n = float_of_int sim.Fempic_sim.parts.Types.s_size in
  Alcotest.(check bool)
    (Printf.sprintf "population %.0f near target %.0f" n prm.Params.target_particles)
    true
    (Float.abs (n -. prm.Params.target_particles) < 0.25 *. prm.Params.target_particles)

(* --- Monte-Carlo collisions --- *)

let test_collisions_frequency () =
  (* collision counts over many steps match the null-collision
     probability for a mono-speed population *)
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"c" 1 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let vel = Opp.decl_dat ctx ~name:"v" ~set:parts ~dim:3 None in
  let mcc =
    Collisions.create ~neutral_density:1e19 ~sigma_cx:1e-18 ~sigma_el:0.0 ~dt:2e-10 ~parts
      ~part_vel:vel ~seed:5 ()
  in
  let n = 20_000 in
  ignore (Opp.inject parts n);
  for p = 0 to n - 1 do
    vel.Types.d_data.((3 * p) + 2) <- 7000.0
  done;
  let cx, el, _ = Collisions.apply mcc in
  let expect = float_of_int n *. Collisions.expected_probability mcc ~v:7000.0 in
  Alcotest.(check int) "no elastic channel" 0 el;
  Alcotest.(check bool)
    (Printf.sprintf "cx count %d ~ expectation %.0f" cx expect)
    true
    (Float.abs (float_of_int cx -. expect) < 5.0 *. sqrt expect)

let test_collisions_elastic_preserves_speed () =
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"c" 1 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let vel = Opp.decl_dat ctx ~name:"v" ~set:parts ~dim:3 None in
  (* elastic only, cranked so ~80% of particles scatter per step *)
  let mcc =
    Collisions.create ~neutral_density:8e23 ~sigma_cx:0.0 ~sigma_el:1e-18 ~dt:2e-10 ~parts
      ~part_vel:vel ~seed:6 ()
  in
  let n = 1000 in
  ignore (Opp.inject parts n);
  for p = 0 to n - 1 do
    vel.Types.d_data.((3 * p) + 2) <- 5000.0
  done;
  let _, el, _ = Collisions.apply mcc in
  Alcotest.(check bool) "most scattered" true (el > n / 2);
  for p = 0 to n - 1 do
    let speed =
      sqrt
        (Array.fold_left
           (fun acc d -> acc +. (vel.Types.d_data.((3 * p) + d) ** 2.0))
           0.0 [| 0; 1; 2 |])
    in
    Alcotest.(check (float 1e-6)) "speed preserved" 5000.0 speed
  done

let test_collisions_thermalize_drift () =
  (* charge exchange replaces beam ions by thermal ones: the mean
     drift must decay toward zero over many collisional steps *)
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"c" 1 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let vel = Opp.decl_dat ctx ~name:"v" ~set:parts ~dim:3 None in
  (* ~1.4% charge-exchange probability per step: a few mean free
     times over the 200 steps below *)
  let mcc =
    Collisions.create ~neutral_density:5e22 ~sigma_cx:1e-18 ~sigma_el:0.0
      ~neutral_temperature:200.0 ~dt:2e-10 ~parts ~part_vel:vel ~seed:7 ()
  in
  let n = 5000 in
  ignore (Opp.inject parts n);
  for p = 0 to n - 1 do
    vel.Types.d_data.((3 * p) + 2) <- 7000.0
  done;
  let mean_vz () =
    let s = ref 0.0 in
    for p = 0 to n - 1 do
      s := !s +. vel.Types.d_data.((3 * p) + 2)
    done;
    !s /. float_of_int n
  in
  let v0 = mean_vz () in
  for _ = 1 to 200 do
    ignore (Collisions.apply mcc)
  done;
  let v1 = mean_vz () in
  Alcotest.(check bool)
    (Printf.sprintf "drift decayed %.0f -> %.0f" v0 v1)
    true (v1 < 0.5 *. v0)

let test_collisions_ionization_creates_particles () =
  (* ionization appends a slow ion at the parent's position and cell,
     via the flag-then-append pattern (no injection mid-loop) *)
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"c" 4 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let vel = Opp.decl_dat ctx ~name:"v" ~set:parts ~dim:3 None in
  let pos = Opp.decl_dat ctx ~name:"x" ~set:parts ~dim:3 None in
  let p2c = Opp.decl_map ctx ~name:"p2c" ~from:parts ~to_:cells ~arity:1 None in
  let mcc =
    (* ionization probability ~0.7 per step *)
    Collisions.create ~neutral_density:5e24 ~sigma_cx:0.0 ~sigma_el:0.0 ~sigma_ion:1e-18
      ~neutral_temperature:100.0 ~part_pos:pos ~p2c ~dt:2e-10 ~parts ~part_vel:vel ~seed:9 ()
  in
  let n = 1000 in
  ignore (Opp.inject parts n);
  Opp.reset_injected parts;
  for p = 0 to n - 1 do
    vel.Types.d_data.((3 * p) + 2) <- 700.0;
    pos.Types.d_data.(3 * p) <- float_of_int (p mod 7);
    p2c.Types.m_data.(p) <- p mod 4
  done;
  let _, _, ion = Collisions.apply mcc in
  Alcotest.(check bool) (Printf.sprintf "many ionizations (%d)" ion) true (ion > n / 2);
  Alcotest.(check int) "population grew" (n + ion) parts.Types.s_size;
  (* offspring inherit position and cell, with thermal speeds *)
  for child = n to parts.Types.s_size - 1 do
    let speed =
      sqrt
        (Array.fold_left
           (fun acc d -> acc +. (vel.Types.d_data.((3 * child) + d) ** 2.0))
           0.0 [| 0; 1; 2 |])
    in
    Alcotest.(check bool) "thermal offspring" true (speed < 700.0);
    Alcotest.(check bool) "valid cell" true
      (p2c.Types.m_data.(child) >= 0 && p2c.Types.m_data.(child) < 4)
  done;
  (* parent-position inheritance: every child's x coordinate is one of
     the parent lattice values *)
  for child = n to parts.Types.s_size - 1 do
    let x = pos.Types.d_data.(3 * child) in
    Alcotest.(check bool) "x inherited" true (Float.abs (x -. Float.round x) < 1e-12 && x < 7.0)
  done

let test_collisions_zero_density_noop () =
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"c" 1 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let vel = Opp.decl_dat ctx ~name:"v" ~set:parts ~dim:3 None in
  let mcc = Collisions.create ~neutral_density:0.0 ~dt:2e-10 ~parts ~part_vel:vel ~seed:8 () in
  ignore (Opp.inject parts 100);
  for p = 0 to 99 do
    vel.Types.d_data.((3 * p) + 2) <- 7000.0
  done;
  let cx, el, ion = Collisions.apply mcc in
  Alcotest.(check int) "no cx" 0 cx;
  Alcotest.(check int) "no ionization" 0 ion;
  Alcotest.(check int) "no elastic" 0 el;
  for p = 0 to 99 do
    Alcotest.(check (float 0.0)) "velocity untouched" 7000.0 vel.Types.d_data.((3 * p) + 2)
  done

(* --- checkpoint / restart --- *)

let test_checkpoint_exact_resume () =
  (* 10 steps + checkpoint + 10 steps must equal load + 10 steps,
     bit for bit (fields, particles, injection RNG state) *)
  let path = Filename.temp_file "oppic_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let a = make () in
      Fempic_sim.run a ~steps:10;
      Checkpoint.save a path;
      Fempic_sim.run a ~steps:10;
      let b = make () in
      Alcotest.(check int) "restored step" 10 (Checkpoint.load b path);
      Fempic_sim.run b ~steps:10;
      Alcotest.(check int) "same particle count" a.Fempic_sim.parts.Types.s_size
        b.Fempic_sim.parts.Types.s_size;
      Array.iteri
        (fun n v ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "phi bitwise at %d" n)
            v
            b.Fempic_sim.node_phi.Types.d_data.(n))
        a.Fempic_sim.node_phi.Types.d_data;
      for p = 0 to (3 * a.Fempic_sim.parts.Types.s_size) - 1 do
        Alcotest.(check (float 0.0)) "positions bitwise" a.Fempic_sim.part_pos.Types.d_data.(p)
          b.Fempic_sim.part_pos.Types.d_data.(p)
      done)

let test_checkpoint_rejects_garbage () =
  let path = Filename.temp_file "oppic_bad_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a checkpoint at all";
      close_out oc;
      let sim = make () in
      Alcotest.(check bool) "bad magic rejected" true
        (try
           ignore (Checkpoint.load sim path);
           false
         with Checkpoint.Corrupt _ -> true))

let test_checkpoint_rejects_wrong_mesh () =
  let path = Filename.temp_file "oppic_mesh_ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let a = make () in
      Fempic_sim.run a ~steps:3;
      Checkpoint.save a path;
      let other_mesh = Opp_mesh.Tet_mesh.build ~nx:3 ~ny:3 ~nz:6 ~lx:3e-5 ~ly:3e-5 ~lz:6e-5 in
      let b =
        Fempic_sim.create ~prm ~profile:(Profile.create ())
          ~runner:(Runner.seq ~profile:(Profile.create ()) ())
          other_mesh
      in
      Alcotest.(check bool) "mesh mismatch rejected" true
        (try
           ignore (Checkpoint.load b path);
           false
         with Checkpoint.Corrupt _ -> true))

let prop_sample_tet_inside =
  (* the uniform tetrahedron sampler must stay inside (barycentric
     coordinates all nonnegative) *)
  QCheck.Test.make ~name:"tet sampler stays inside" ~count:200 QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Rng.create seed in
      let v0 = [| 0.0; 0.0; 0.0 |] and v1 = [| 1.0; 0.0; 0.0 |] in
      let v2 = [| 0.0; 1.0; 0.0 |] and v3 = [| 0.0; 0.0; 1.0 |] in
      let p = Opp_mesh.Geom.sample_tet rng v0 v1 v2 v3 in
      p.(0) >= 0.0 && p.(1) >= 0.0 && p.(2) >= 0.0 && p.(0) +. p.(1) +. p.(2) <= 1.0 +. 1e-12)

let prop_move_finds_containing_cell =
  (* from ANY starting cell, the barycentric walk must settle on a cell
     that actually contains the particle (the duct is convex, so the
     walk cannot get stuck) *)
  QCheck.Test.make ~name:"mover settles on the containing cell" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let m = mesh () in
      let sim =
        Fempic_sim.create ~prm ~profile:(Profile.create ())
          ~runner:(Runner.seq ~profile:(Profile.create ()) ())
          m
      in
      ignore (Opp.inject sim.Fempic_sim.parts 8);
      Opp.reset_injected sim.Fempic_sim.parts;
      for p = 0 to 7 do
        (* random interior position, random (likely wrong) start cell *)
        sim.Fempic_sim.part_pos.Types.d_data.(3 * p) <- Rng.float rng *. 3.99e-5;
        sim.Fempic_sim.part_pos.Types.d_data.((3 * p) + 1) <- Rng.float rng *. 3.99e-5;
        sim.Fempic_sim.part_pos.Types.d_data.((3 * p) + 2) <- Rng.float rng *. 7.99e-5;
        sim.Fempic_sim.p2c.Types.m_data.(p) <- Rng.int rng m.Opp_mesh.Tet_mesh.ncells
      done;
      let r = Fempic_sim.move sim in
      let lc = Array.make 4 0.0 in
      r.Seq.mv_removed = 0
      && (let ok = ref true in
          for p = 0 to 7 do
            let c = sim.Fempic_sim.p2c.Types.m_data.(p) in
            Opp_mesh.Geom.barycentric m.Opp_mesh.Tet_mesh.cell_bary ~off:(16 * c)
              ~x:sim.Fempic_sim.part_pos.Types.d_data.(3 * p)
              ~y:sim.Fempic_sim.part_pos.Types.d_data.((3 * p) + 1)
              ~z:sim.Fempic_sim.part_pos.Types.d_data.((3 * p) + 2)
              lc;
            if not (Opp_mesh.Geom.inside ~eps:1e-9 lc) then ok := false
          done;
          !ok))

let suite =
  [
    Alcotest.test_case "injection rate bookkeeping" `Quick test_injection_rate;
    Alcotest.test_case "macro weight matches flux" `Quick test_macro_weight_matches_flux;
    Alcotest.test_case "charge conservation" `Quick test_charge_conservation;
    Alcotest.test_case "lc weights valid" `Quick test_lc_weights_valid;
    Alcotest.test_case "prefill count/distribution" `Quick test_prefill_count_and_distribution;
    Alcotest.test_case "ballistic transit plateau" `Slow test_ballistic_transit;
    Alcotest.test_case "direct-hop equals multi-hop" `Slow test_dh_equals_mh;
    Alcotest.test_case "E of a linear potential" `Quick test_electric_field_of_linear_potential;
    Alcotest.test_case "solver: vacuum max principle" `Quick test_solver_vacuum_max_principle;
    Alcotest.test_case "solver: manufactured solution" `Slow test_solver_manufactured_solution;
    Alcotest.test_case "Boltzmann electron response" `Slow test_boltzmann_electron_response;
    Alcotest.test_case "steady-state population" `Slow test_steady_state_population;
    QCheck_alcotest.to_alcotest prop_sample_tet_inside;
    QCheck_alcotest.to_alcotest prop_move_finds_containing_cell;
    Alcotest.test_case "mcc: collision frequency" `Quick test_collisions_frequency;
    Alcotest.test_case "mcc: elastic preserves speed" `Quick test_collisions_elastic_preserves_speed;
    Alcotest.test_case "mcc: cx thermalizes drift" `Slow test_collisions_thermalize_drift;
    Alcotest.test_case "mcc: ionization creates particles" `Quick
      test_collisions_ionization_creates_particles;
    Alcotest.test_case "mcc: zero density no-op" `Quick test_collisions_zero_density_noop;
    Alcotest.test_case "checkpoint: exact resume" `Slow test_checkpoint_exact_resume;
    Alcotest.test_case "checkpoint: rejects garbage" `Quick test_checkpoint_rejects_garbage;
    Alcotest.test_case "checkpoint: rejects wrong mesh" `Quick test_checkpoint_rejects_wrong_mesh;
  ]
