(* Tests for the performance-model layer: device table, interconnect
   model, roofline classification, report rendering, the experiment
   registry, and the workload projections behind the scaling figures. *)

let check_float = Alcotest.(check (float 1e-12))

(* --- devices --- *)

let test_device_kernel_time () =
  let d = Opp_perf.Device.v100 in
  (* bandwidth-bound: 9 GB at 900 GB/s = 10 ms + launch *)
  Alcotest.(check (float 1e-9)) "bandwidth bound"
    (0.01 +. d.Opp_perf.Device.launch_overhead)
    (Opp_perf.Device.kernel_time d ~bytes:9e9 ~flops:1e6);
  (* compute-bound: 7.8e12 flop/s peak -> 1 s of flops dominates *)
  Alcotest.(check (float 1e-6)) "compute bound"
    (1.0 +. d.Opp_perf.Device.launch_overhead)
    (Opp_perf.Device.kernel_time d ~bytes:1e3 ~flops:7.8e12)

let test_device_table_sanity () =
  List.iter
    (fun (d : Opp_perf.Device.t) ->
      Alcotest.(check bool) (d.Opp_perf.Device.name ^ " bw") true (d.Opp_perf.Device.mem_bw > 1e11);
      Alcotest.(check bool) "peak" true (d.Opp_perf.Device.peak_fp64 > 1e12);
      Alcotest.(check bool) "power" true (d.Opp_perf.Device.power > 100.0);
      Alcotest.(check bool) "warp" true (Opp_perf.Device.warp_size d >= 1))
    Opp_perf.Device.all;
  (* the paper's AMD atomic pathology is encoded *)
  Alcotest.(check bool) "AMD AT >> UA" true
    (Opp_perf.Device.mi250x_gcd.Opp_perf.Device.at_conflict
    > 100.0 *. Opp_perf.Device.mi250x_gcd.Opp_perf.Device.ua_conflict);
  Alcotest.(check bool) "NVIDIA AT fine" true
    (Opp_perf.Device.v100.Opp_perf.Device.at_conflict
    < 10.0 *. Opp_perf.Device.v100.Opp_perf.Device.atomic_base)

(* --- interconnect --- *)

let test_netmodel () =
  let net = Opp_perf.Netmodel.infiniband in
  check_float "message = latency + size/bw"
    (net.Opp_perf.Netmodel.latency +. (1e6 /. net.Opp_perf.Netmodel.bandwidth))
    (Opp_perf.Netmodel.message_time net ~bytes:1_000_000);
  check_float "allreduce trivial at 1 rank" 0.0
    (Opp_perf.Netmodel.allreduce_time net ~ranks:1 ~bytes:8);
  (* log2 scaling: 8 ranks -> 3 rounds, 1024 -> 10 rounds *)
  let t8 = Opp_perf.Netmodel.allreduce_time net ~ranks:8 ~bytes:8 in
  let t1024 = Opp_perf.Netmodel.allreduce_time net ~ranks:1024 ~bytes:8 in
  Alcotest.(check (float 1e-12)) "log scaling" (10.0 /. 3.0) (t1024 /. t8);
  Alcotest.(check bool) "p2p includes per-message latency" true
    (Opp_perf.Netmodel.p2p_time net ~messages:100 ~bytes:0
    > 99.0 *. net.Opp_perf.Netmodel.latency)

(* --- roofline --- *)

let test_roofline_attainable () =
  let d = Opp_perf.Device.xeon_8268_node in
  (* below the ridge: bandwidth-limited *)
  check_float "bw-limited" (0.1 *. d.Opp_perf.Device.mem_bw)
    (Opp_perf.Roofline.attainable d ~ai:0.1);
  (* above the ridge: peak-limited *)
  check_float "peak-limited" d.Opp_perf.Device.peak_fp64
    (Opp_perf.Roofline.attainable d ~ai:1e6)

let test_roofline_classification () =
  let d = Opp_perf.Device.v100 in
  let profile = Opp_core.Profile.create () in
  (* a kernel running at its bandwidth roof *)
  Opp_core.Profile.record ~t:profile ~name:"at_roof" ~elems:1
    ~seconds:(1e9 /. d.Opp_perf.Device.mem_bw) ~flops:1e8 ~bytes:1e9 ();
  (* a kernel 50x below its roof: latency/serialization *)
  Opp_core.Profile.record ~t:profile ~name:"stalled" ~elems:1
    ~seconds:(50.0 *. 1e9 /. d.Opp_perf.Device.mem_bw) ~flops:1e8 ~bytes:1e9 ();
  match Opp_perf.Roofline.points d ~t:profile () with
  | [ a; b ] ->
      Alcotest.(check string) "order" "at_roof" a.Opp_perf.Roofline.kernel;
      Alcotest.(check bool) "at roof is DRAM bound" true
        (a.Opp_perf.Roofline.bound = Opp_perf.Roofline.Dram_bound);
      Alcotest.(check (float 0.01)) "fraction ~1" 1.0 a.Opp_perf.Roofline.fraction_of_roof;
      Alcotest.(check bool) "stalled is latency bound" true
        (b.Opp_perf.Roofline.bound = Opp_perf.Roofline.Latency_bound)
  | _ -> Alcotest.fail "expected two roofline points"

let test_roofline_skips_pure_movers () =
  let profile = Opp_core.Profile.create () in
  Opp_core.Profile.record ~t:profile ~name:"memcpyish" ~elems:1 ~seconds:0.1 ~flops:0.0
    ~bytes:1e9 ();
  Alcotest.(check int) "no flops, no point" 0
    (List.length (Opp_perf.Roofline.points Opp_perf.Device.v100 ~t:profile ()))

(* --- reports render --- *)

let render f =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  f fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let contains hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let test_report_breakdown () =
  let p1 = Opp_core.Profile.create () and p2 = Opp_core.Profile.create () in
  Opp_core.Profile.record ~t:p1 ~name:"Move" ~elems:10 ~seconds:0.5 ~flops:0.0 ~bytes:0.0 ();
  Opp_core.Profile.record ~t:p2 ~name:"Move" ~elems:10 ~seconds:0.25 ~flops:0.0 ~bytes:0.0 ();
  let out = render (fun fmt -> Opp_perf.Report.pp_breakdown fmt [ ("A", p1); ("B", p2) ]) in
  Alcotest.(check bool) "has kernel row" true (contains out "Move");
  Alcotest.(check bool) "has first column" true (contains out "500.000");
  Alcotest.(check bool) "has second column" true (contains out "250.000");
  Alcotest.(check bool) "has total row" true (contains out "TOTAL")

let test_report_power () =
  let out =
    render (fun fmt ->
        Opp_perf.Report.pp_power_equivalent fmt ~title:"t"
          [ ("base", 18, 12000.0, 2.0); ("gpu", 32, 12000.0, 1.0) ])
  in
  Alcotest.(check bool) "baseline 1x" true (contains out "1.00x");
  Alcotest.(check bool) "speedup 2x" true (contains out "2.00x")

let test_report_utilization () =
  let out =
    render (fun fmt -> Opp_perf.Report.pp_utilization fmt [ ("cfg", 4, 0.9, 0.1) ])
  in
  Alcotest.(check bool) "90%" true (contains out "90%")

(* --- experiments registry and workload model --- *)

let test_registry_complete () =
  (* every table and figure of the paper's evaluation has an entry *)
  List.iter
    (fun id ->
      Alcotest.(check bool) ("registry has " ^ id) true
        (Experiments.Registry.find id <> None))
    [ "tab1"; "tab2"; "fig9a"; "fig9b"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "fig15"; "validate" ];
  let ids = List.map (fun e -> e.Experiments.Registry.id) Experiments.Registry.all in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_systems_power () =
  check_float "18 ARCHER2 nodes" (18.0 *. 660.0)
    (Experiments.Systems.power Experiments.Systems.archer2 ~devices:18);
  (* 32 V100 = 8 Bede nodes at 1500 W *)
  check_float "32 V100" (8.0 *. 1500.0)
    (Experiments.Systems.power Experiments.Systems.bede ~devices:32);
  (* the paper's three ~12 kW configurations really are comparable *)
  let kw sys n = Experiments.Systems.power sys ~devices:n /. 1e3 in
  Alcotest.(check bool) "~12kW each" true
    (Float.abs (kw Experiments.Systems.archer2 18 -. 12.0) < 0.5
    && Float.abs (kw Experiments.Systems.bede 32 -. 12.0) < 0.5
    && Float.abs (kw Experiments.Systems.lumi_g 40 -. 12.0) < 0.5)

let test_workload_comm_model () =
  let tr = Opp_dist.Traffic.create () in
  tr.Opp_dist.Traffic.halo_bytes <- 8000.0;
  tr.Opp_dist.Traffic.halo_messages <- 40;
  tr.Opp_dist.Traffic.reductions <- 20;
  let c = Experiments.Workload.comm_of_traffic tr ~ranks:4 ~steps:5 in
  check_float "per rank per step bytes" 400.0 c.Experiments.Workload.halo_bytes;
  check_float "per rank per step msgs" 2.0 c.Experiments.Workload.halo_messages;
  (* reductions are collective: per step, not per rank *)
  check_float "reductions per step" 4.0 c.Experiments.Workload.reductions;
  let net = Opp_perf.Netmodel.infiniband in
  check_float "no comm on one rank" 0.0 (Experiments.Workload.comm_time c net ~ranks:1);
  Alcotest.(check bool) "comm grows with ranks" true
    (Experiments.Workload.comm_time c net ~ranks:64
    > Experiments.Workload.comm_time c net ~ranks:2);
  check_float "no sync on one rank" 0.0
    (Experiments.Workload.sync_time c ~compute:1.0 ~ranks:1)

let test_registry_tab2_renders () =
  (* the cheapest registry entry end to end: the systems table *)
  match Experiments.Registry.find "tab2" with
  | None -> Alcotest.fail "tab2 missing"
  | Some e ->
      let out = render (fun fmt -> Experiments.Registry.run_one fmt e) in
      List.iter
        (fun needle -> Alcotest.(check bool) ("mentions " ^ needle) true (contains out needle))
        [ "Intel Xeon 8268"; "AMD EPYC 7742"; "V100"; "MI250X"; "GB/s" ]

let test_traffic_accounting () =
  let tr = Opp_dist.Traffic.create () in
  tr.Opp_dist.Traffic.halo_bytes <- 100.0;
  tr.Opp_dist.Traffic.migrate_bytes <- 50.0;
  tr.Opp_dist.Traffic.solve_bytes <- 25.0;
  tr.Opp_dist.Traffic.halo_messages <- 3;
  tr.Opp_dist.Traffic.migrate_messages <- 2;
  check_float "total bytes" 175.0 (Opp_dist.Traffic.total_bytes tr);
  Alcotest.(check int) "total messages" 5 (Opp_dist.Traffic.total_messages tr);
  Opp_dist.Traffic.reset tr;
  check_float "reset" 0.0 (Opp_dist.Traffic.total_bytes tr)

let suite =
  [
    Alcotest.test_case "device: kernel time" `Quick test_device_kernel_time;
    Alcotest.test_case "device: table sanity" `Quick test_device_table_sanity;
    Alcotest.test_case "netmodel" `Quick test_netmodel;
    Alcotest.test_case "roofline: attainable" `Quick test_roofline_attainable;
    Alcotest.test_case "roofline: classification" `Quick test_roofline_classification;
    Alcotest.test_case "roofline: skips pure movers" `Quick test_roofline_skips_pure_movers;
    Alcotest.test_case "report: breakdown" `Quick test_report_breakdown;
    Alcotest.test_case "report: power" `Quick test_report_power;
    Alcotest.test_case "report: utilization" `Quick test_report_utilization;
    Alcotest.test_case "experiments: registry complete" `Quick test_registry_complete;
    Alcotest.test_case "experiments: system power" `Quick test_systems_power;
    Alcotest.test_case "experiments: workload comm model" `Quick test_workload_comm_model;
    Alcotest.test_case "traffic accounting" `Quick test_traffic_accounting;
    Alcotest.test_case "registry: tab2 renders" `Quick test_registry_tab2_renders;
  ]
