(* Tests for the OP-PIC core DSL: declarations, par_loop semantics,
   particle lifecycle, and the multi-hop particle mover on a toy 1-D
   chain mesh. *)

open Opp_core
open Opp_core.Types

let check_float = Alcotest.(check (float 1e-12))

(* A chain of n cells, each with 2 nodes (shared): node i and i+1. *)
let chain_mesh ctx n =
  let cells = Opp.decl_set ctx ~name:"cells" n in
  let nodes = Opp.decl_set ctx ~name:"nodes" (n + 1) in
  let c2n_data = Array.init (2 * n) (fun i -> (i / 2) + (i mod 2)) in
  let c2n = Opp.decl_map ctx ~name:"c2n" ~from:cells ~to_:nodes ~arity:2 (Some c2n_data) in
  let c2c_data =
    Array.init (2 * n) (fun i ->
        let c = i / 2 in
        if i mod 2 = 0 then c - 1 else if c = n - 1 then -1 else c + 1)
  in
  let c2c = Opp.decl_map ctx ~name:"c2c" ~from:cells ~to_:cells ~arity:2 (Some c2c_data) in
  (cells, nodes, c2n, c2c)

let test_decl_basics () =
  let ctx = Opp.init () in
  let cells, nodes, c2n, _ = chain_mesh ctx 4 in
  Alcotest.(check int) "cells" 4 cells.s_size;
  Alcotest.(check int) "nodes" 5 nodes.s_size;
  Alcotest.(check int) "map arity" 2 c2n.m_arity;
  Alcotest.(check bool) "mesh set" false (Opp.is_particle_set cells);
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  Alcotest.(check bool) "particle set" true (Opp.is_particle_set parts);
  Alcotest.(check int) "initially empty" 0 parts.s_size

let test_decl_validation () =
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 4 in
  Alcotest.check_raises "negative size" (Invalid_argument "decl_set: negative size") (fun () ->
      ignore (Opp.decl_set ctx ~name:"bad" (-1)));
  Alcotest.check_raises "bad dim" (Invalid_argument "decl_dat: dim must be positive") (fun () ->
      ignore (Opp.decl_dat ctx ~name:"d" ~set:cells ~dim:0 None));
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  Alcotest.check_raises "particle set of particle set"
    (Invalid_argument "decl_particle_set: cells must be a mesh set") (fun () ->
      ignore (Opp.decl_particle_set ctx ~name:"pp" parts))

let test_direct_loop () =
  let ctx = Opp.init () in
  let cells, _, _, _ = chain_mesh ctx 5 in
  let d = Opp.decl_dat ctx ~name:"d" ~set:cells ~dim:2 None in
  let kern views =
    let v = views.(0) in
    Opp.set v 0 3.0;
    Opp.set v 1 4.0
  in
  Opp.par_loop ~name:"fill" kern cells Opp.all [ Opp.arg_dat d Opp.write ];
  Array.iter (fun x -> Alcotest.(check bool) "filled" true (x = 3.0 || x = 4.0)) d.d_data

let test_indirect_read () =
  let ctx = Opp.init () in
  let cells, nodes, c2n, _ = chain_mesh ctx 4 in
  let nd = Opp.decl_dat ctx ~name:"nd" ~set:nodes ~dim:1 (Some (Array.init 5 float_of_int)) in
  let cd = Opp.decl_dat ctx ~name:"cd" ~set:cells ~dim:1 None in
  (* cell value = sum of its two node values *)
  let kern views = Opp.set views.(0) 0 (Opp.get views.(1) 0 +. Opp.get views.(2) 0) in
  Opp.par_loop ~name:"sum" kern cells Opp.all
    [
      Opp.arg_dat cd Opp.write;
      Opp.arg_dat_i nd ~idx:0 ~map:c2n Opp.read;
      Opp.arg_dat_i nd ~idx:1 ~map:c2n Opp.read;
    ];
  for c = 0 to 3 do
    check_float "cell sum" (float_of_int (c + c + 1)) cd.d_data.(c)
  done

let test_indirect_increment () =
  let ctx = Opp.init () in
  let cells, nodes, c2n, _ = chain_mesh ctx 4 in
  let nd = Opp.decl_dat ctx ~name:"nd" ~set:nodes ~dim:1 None in
  (* every cell adds 1 to each of its nodes: interior nodes get 2 *)
  let kern views =
    Opp.vinc views.(0) 0 1.0;
    Opp.vinc views.(1) 0 1.0
  in
  Opp.par_loop ~name:"inc" kern cells Opp.all
    [ Opp.arg_dat_i nd ~idx:0 ~map:c2n Opp.inc; Opp.arg_dat_i nd ~idx:1 ~map:c2n Opp.inc ];
  check_float "end node" 1.0 nd.d_data.(0);
  check_float "end node" 1.0 nd.d_data.(4);
  for n = 1 to 3 do
    check_float "interior node" 2.0 nd.d_data.(n)
  done

let test_gbl_reduction () =
  let ctx = Opp.init () in
  let cells, _, _, _ = chain_mesh ctx 10 in
  let d = Opp.decl_dat ctx ~name:"d" ~set:cells ~dim:1 (Some (Array.init 10 float_of_int)) in
  let acc = [| 0.0 |] in
  let kern views = Opp.vinc views.(1) 0 (Opp.get views.(0) 0) in
  Opp.par_loop ~name:"reduce" kern cells Opp.all
    [ Opp.arg_dat d Opp.read; Opp.arg_gbl acc Opp.inc ];
  check_float "sum 0..9" 45.0 acc.(0)

let test_arg_validation () =
  let ctx = Opp.init () in
  let cells, nodes, c2n, _ = chain_mesh ctx 4 in
  let nd = Opp.decl_dat ctx ~name:"nd" ~set:nodes ~dim:1 None in
  (* direct access to a dat on another set must be rejected *)
  Alcotest.check_raises "wrong set"
    (Invalid_argument "arg nd: direct access but dat lives on nodes, loop over cells")
    (fun () ->
      Opp.par_loop ~name:"bad" (fun _ -> ()) cells Opp.all [ Opp.arg_dat nd Opp.read ]);
  (* map index beyond arity must be rejected *)
  Alcotest.check_raises "bad idx" (Invalid_argument "arg nd: map index 2 out of arity 2")
    (fun () ->
      Opp.par_loop ~name:"bad" (fun _ -> ()) cells Opp.all
        [ Opp.arg_dat_i nd ~idx:2 ~map:c2n Opp.read ])

let test_particle_inject_and_iterate () =
  let ctx = Opp.init () in
  let cells, _, _, _ = chain_mesh ctx 4 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let w = Opp.decl_dat ctx ~name:"w" ~set:parts ~dim:1 None in
  let start = Opp.inject parts 5 in
  Alcotest.(check int) "first slot" 0 start;
  Alcotest.(check int) "size" 5 parts.s_size;
  (* fill all, then inject more and touch only the new ones *)
  Opp.par_loop ~name:"ones" (fun v -> Opp.set v.(0) 0 1.0) parts Opp.all [ Opp.arg_dat w Opp.write ];
  Opp.reset_injected parts;
  let start2 = Opp.inject parts 3 in
  Alcotest.(check int) "appended" 5 start2;
  Opp.par_loop ~name:"twos" (fun v -> Opp.set v.(0) 0 2.0) parts Opp.injected
    [ Opp.arg_dat w Opp.write ];
  for i = 0 to 4 do
    check_float "old untouched" 1.0 w.d_data.(i)
  done;
  for i = 5 to 7 do
    check_float "new set" 2.0 w.d_data.(i)
  done

let test_particle_capacity_growth () =
  let ctx = Opp.init () in
  let cells, _, _, _ = chain_mesh ctx 2 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let w = Opp.decl_dat ctx ~name:"w" ~set:parts ~dim:3 None in
  ignore (Opp.inject parts 1000);
  Alcotest.(check bool) "capacity grew" true (parts.s_capacity >= 1000);
  Alcotest.(check int) "dat storage grew" (parts.s_capacity * 3) (Array.length w.d_data)

let test_remove_flagged () =
  let ctx = Opp.init () in
  let cells, _, _, _ = chain_mesh ctx 2 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let w = Opp.decl_dat ctx ~name:"w" ~set:parts ~dim:1 None in
  ignore (Opp.inject parts 6);
  for i = 0 to 5 do
    w.d_data.(i) <- float_of_int i
  done;
  let dead = [| false; true; false; true; true; false |] in
  let removed = Particle.remove_flagged parts dead in
  Alcotest.(check int) "removed" 3 removed;
  Alcotest.(check int) "size" 3 parts.s_size;
  let survivors = List.sort compare (List.init 3 (fun i -> w.d_data.(i))) in
  Alcotest.(check (list (float 0.0))) "survivors" [ 0.0; 2.0; 5.0 ] survivors

let test_remove_all () =
  let ctx = Opp.init () in
  let cells, _, _, _ = chain_mesh ctx 2 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  ignore (Opp.inject parts 4);
  let removed = Particle.remove_flagged parts [| true; true; true; true |] in
  Alcotest.(check int) "all removed" 4 removed;
  Alcotest.(check int) "empty" 0 parts.s_size

let test_sort_by_cell () =
  let ctx = Opp.init () in
  let cells, _, _, _ = chain_mesh ctx 4 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let p2c = Opp.decl_map ctx ~name:"p2c" ~from:parts ~to_:cells ~arity:1 None in
  let w = Opp.decl_dat ctx ~name:"w" ~set:parts ~dim:1 None in
  ignore (Opp.inject parts 6);
  let cells_of = [| 3; 1; 2; 0; 1; 3 |] in
  Array.iteri (fun i c -> p2c.m_data.(i) <- c) cells_of;
  Array.iteri (fun i c -> w.d_data.(i) <- float_of_int c) cells_of;
  Opp.sort_by_cell parts ~p2c;
  for i = 1 to 5 do
    Alcotest.(check bool) "sorted" true (p2c.m_data.(i - 1) <= p2c.m_data.(i))
  done;
  (* dats permuted consistently with the map *)
  for i = 0 to 5 do
    check_float "dat follows map" (float_of_int p2c.m_data.(i)) w.d_data.(i)
  done

(* Particle mover on the chain: each particle has a target cell dat;
   the kernel hops right (slot 1) until current cell >= target, left
   otherwise (slot 0). Walking off the right end removes it. *)
let move_fixture n =
  let ctx = Opp.init () in
  let cells, _, _, c2c = chain_mesh ctx n in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let p2c = Opp.decl_map ctx ~name:"p2c" ~from:parts ~to_:cells ~arity:1 None in
  let target = Opp.decl_dat ctx ~name:"target" ~set:parts ~dim:1 None in
  let kern views (mc : Seq.move_ctx) =
    let tgt = int_of_float (Opp.get views.(0) 0) in
    if mc.Seq.cell = tgt then mc.Seq.status <- Seq.Move_done
    else begin
      let dir = if tgt > mc.Seq.cell then 1 else 0 in
      let next = c2c.m_data.((2 * mc.Seq.cell) + dir) in
      if next = -1 then mc.Seq.status <- Seq.Need_remove
      else begin
        mc.Seq.cell <- next;
        mc.Seq.status <- Seq.Need_move
      end
    end
  in
  (ctx, cells, parts, p2c, target, kern)

let test_particle_move_multi_hop () =
  let _, _, parts, p2c, target, kern = move_fixture 10 in
  ignore (Opp.inject parts 3);
  p2c.m_data.(0) <- 0;
  target.d_data.(0) <- 7.0;
  p2c.m_data.(1) <- 5;
  target.d_data.(1) <- 5.0;
  p2c.m_data.(2) <- 9;
  target.d_data.(2) <- 2.0;
  let r =
    Opp.particle_move ~name:"move" kern parts ~p2c [ Opp.arg_dat target Opp.read ]
  in
  Alcotest.(check int) "all stayed" 3 r.Seq.mv_moved;
  Alcotest.(check int) "none removed" 0 r.Seq.mv_removed;
  Alcotest.(check int) "cells updated" 7 p2c.m_data.(0);
  Alcotest.(check int) "same cell" 5 p2c.m_data.(1);
  Alcotest.(check int) "moved left" 2 p2c.m_data.(2);
  (* particle 0 hopped 0->7: 8 kernel calls; particle 1: 1; particle 2: 8 *)
  Alcotest.(check int) "total hops" 17 r.Seq.mv_total_hops;
  Alcotest.(check int) "max hops" 8 r.Seq.mv_max_hops

let test_particle_move_removal () =
  let _, _, parts, p2c, target, kern = move_fixture 4 in
  ignore (Opp.inject parts 2);
  p2c.m_data.(0) <- 2;
  target.d_data.(0) <- 99.0;
  (* walks off the right end *)
  p2c.m_data.(1) <- 1;
  target.d_data.(1) <- 1.0;
  let r =
    Opp.particle_move ~name:"move" kern parts ~p2c [ Opp.arg_dat target Opp.read ]
  in
  Alcotest.(check int) "one removed" 1 r.Seq.mv_removed;
  Alcotest.(check int) "one left" 1 parts.s_size;
  Alcotest.(check int) "survivor in its cell" 1 p2c.m_data.(0)

let test_particle_move_direct_hop () =
  let _, _, parts, p2c, target, kern = move_fixture 10 in
  ignore (Opp.inject parts 1);
  p2c.m_data.(0) <- 0;
  target.d_data.(0) <- 8.0;
  (* a perfect locator jumps straight to the target: 1 hop *)
  let r =
    Opp.particle_move ~name:"move" ~dh:(fun _ -> 8) kern parts ~p2c
      [ Opp.arg_dat target Opp.read ]
  in
  Alcotest.(check int) "dh single hop" 1 r.Seq.mv_total_hops;
  Alcotest.(check int) "landed" 8 p2c.m_data.(0)

let test_particle_move_pending () =
  (* cells >= 5 are "remote": the mover must stop there and hand the
     particle to on_pending, then remove it locally *)
  let _, _, parts, p2c, target, kern = move_fixture 10 in
  ignore (Opp.inject parts 2);
  p2c.m_data.(0) <- 3;
  target.d_data.(0) <- 9.0;
  p2c.m_data.(1) <- 1;
  target.d_data.(1) <- 2.0;
  let pending = ref [] in
  let r =
    Opp.particle_move ~name:"move"
      ~should_stop:(fun c -> c >= 5)
      ~on_pending:(fun ~p ~cell -> pending := (p, cell) :: !pending)
      kern parts ~p2c
      [ Opp.arg_dat target Opp.read ]
  in
  Alcotest.(check int) "one sent" 1 r.Seq.mv_sent;
  Alcotest.(check (list (pair int int))) "pending particle at boundary cell" [ (0, 5) ] !pending;
  Alcotest.(check int) "one stayed" 1 parts.s_size

let test_move_diverged () =
  let ctx = Opp.init () in
  let cells, _, _, _ = chain_mesh ctx 4 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let p2c = Opp.decl_map ctx ~name:"p2c" ~from:parts ~to_:cells ~arity:1 None in
  ignore (Opp.inject parts 1);
  p2c.m_data.(0) <- 0;
  (* kernel that never terminates: ping-pong between cells 0 and 1 *)
  let kern _ (mc : Seq.move_ctx) =
    mc.Seq.cell <- (if mc.Seq.cell = 0 then 1 else 0);
    mc.Seq.status <- Seq.Need_move
  in
  Alcotest.(check bool) "raises Move_diverged" true
    (try
       ignore (Opp.particle_move ~name:"loop" ~max_hops:50 kern parts ~p2c []);
       false
     with Seq.Move_diverged _ -> true)

let test_profile_ledger () =
  let ctx = Opp.init () in
  let cells, _, _, _ = chain_mesh ctx 8 in
  let d = Opp.decl_dat ctx ~name:"d" ~set:cells ~dim:1 None in
  let prof = Profile.create () in
  Opp.par_loop ~profile:prof ~flops_per_elem:2.0 ~name:"k1" (fun _ -> ()) cells Opp.all
    [ Opp.arg_dat d Opp.rw ];
  Opp.par_loop ~profile:prof ~flops_per_elem:2.0 ~name:"k1" (fun _ -> ()) cells Opp.all
    [ Opp.arg_dat d Opp.rw ];
  match Profile.entries ~t:prof () with
  | [ (name, e) ] ->
      Alcotest.(check string) "name" "k1" name;
      Alcotest.(check int) "calls" 2 e.Profile.calls;
      Alcotest.(check int) "elems" 16 e.Profile.elems;
      check_float "flops" 32.0 e.Profile.flops;
      (* rw: 2 * 8 bytes * dim 1 * 16 elems *)
      check_float "bytes" 256.0 e.Profile.bytes
  | _ -> Alcotest.fail "expected exactly one ledger entry"

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_float "same stream" (Rng.float a) (Rng.float b)
  done;
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true (Rng.float a <> Rng.float c)

let prop_rng_uniform =
  QCheck.Test.make ~name:"rng floats lie in [0,1)" ~count:100 QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      List.for_all
        (fun _ ->
          let v = Rng.float rng in
          v >= 0.0 && v < 1.0)
        (List.init 50 Fun.id))

let prop_remove_flagged_conserves =
  QCheck.Test.make ~name:"hole filling conserves surviving particles" ~count:50
    QCheck.(pair (int_range 1 200) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let ctx = Opp.init () in
      let cells = Opp.decl_set ctx ~name:"c" 1 in
      let parts = Opp.decl_particle_set ctx ~name:"p" cells in
      let w = Opp.decl_dat ctx ~name:"w" ~set:parts ~dim:1 None in
      ignore (Opp.inject parts n);
      for i = 0 to n - 1 do
        w.d_data.(i) <- float_of_int i
      done;
      let dead = Array.init n (fun _ -> Rng.float rng < 0.3) in
      let expected =
        List.filteri (fun i _ -> not dead.(i)) (List.init n float_of_int) |> List.sort compare
      in
      let removed = Particle.remove_flagged parts dead in
      let got = List.sort compare (List.init parts.s_size (fun i -> w.d_data.(i))) in
      removed = n - List.length expected && got = expected)

let suite =
  [
    Alcotest.test_case "declarations" `Quick test_decl_basics;
    Alcotest.test_case "declaration validation" `Quick test_decl_validation;
    Alcotest.test_case "direct loop" `Quick test_direct_loop;
    Alcotest.test_case "indirect read" `Quick test_indirect_read;
    Alcotest.test_case "indirect increment" `Quick test_indirect_increment;
    Alcotest.test_case "global reduction" `Quick test_gbl_reduction;
    Alcotest.test_case "argument validation" `Quick test_arg_validation;
    Alcotest.test_case "inject and iterate injected" `Quick test_particle_inject_and_iterate;
    Alcotest.test_case "capacity growth" `Quick test_particle_capacity_growth;
    Alcotest.test_case "hole-filling removal" `Quick test_remove_flagged;
    Alcotest.test_case "remove all" `Quick test_remove_all;
    Alcotest.test_case "sort by cell" `Quick test_sort_by_cell;
    Alcotest.test_case "move: multi-hop" `Quick test_particle_move_multi_hop;
    Alcotest.test_case "move: removal at boundary" `Quick test_particle_move_removal;
    Alcotest.test_case "move: direct-hop" `Quick test_particle_move_direct_hop;
    Alcotest.test_case "move: pending at rank boundary" `Quick test_particle_move_pending;
    Alcotest.test_case "move: divergence guard" `Quick test_move_diverged;
    Alcotest.test_case "profile ledger" `Quick test_profile_ledger;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    QCheck_alcotest.to_alcotest prop_rng_uniform;
    QCheck_alcotest.to_alcotest prop_remove_flagged_conserves;
  ]
