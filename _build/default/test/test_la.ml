(* Tests for the linear-algebra substrate (PETSc KSP substitute). *)

open Opp_la

let check_float = Alcotest.(check (float 1e-12))

let test_vec_ops () =
  let x = [| 1.0; 2.0; 3.0 |] and y = [| 4.0; -1.0; 0.5 |] in
  check_float "dot" 3.5 (Vec.dot x y);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 x);
  let y' = Array.copy y in
  Vec.axpy 2.0 x y';
  check_float "axpy" 6.0 y'.(0);
  check_float "axpy" 3.0 y'.(1);
  let z = Vec.create 3 in
  Vec.mul_pointwise x y z;
  check_float "mul_pointwise" 4.0 z.(0);
  check_float "norm_inf" 4.0 (Vec.norm_inf y)

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: length mismatch") (fun () ->
      ignore (Vec.dot [| 1.0 |] [| 1.0; 2.0 |]))

let test_csr_assembly () =
  let m = Csr.of_triplets 3 [ (0, 0, 2.0); (0, 1, 1.0); (1, 1, 3.0); (2, 2, 4.0); (0, 0, 1.0) ] in
  check_float "duplicate summed" 3.0 (Csr.get m 0 0);
  check_float "off-diagonal" 1.0 (Csr.get m 0 1);
  check_float "missing entry is zero" 0.0 (Csr.get m 1 0);
  Alcotest.(check int) "nnz after merge" 4 (Csr.nnz m)

let test_csr_spmv () =
  (* [[2 1 0][1 3 0][0 0 4]] x [1 2 3] = [4 7 12] *)
  let m =
    Csr.of_triplets 3 [ (0, 0, 2.0); (0, 1, 1.0); (1, 0, 1.0); (1, 1, 3.0); (2, 2, 4.0) ]
  in
  let y = Vec.create 3 in
  Csr.spmv m [| 1.0; 2.0; 3.0 |] y;
  check_float "spmv row 0" 4.0 y.(0);
  check_float "spmv row 1" 7.0 y.(1);
  check_float "spmv row 2" 12.0 y.(2)

let test_csr_pattern_reuse () =
  let m = Csr.of_triplets 2 [ (0, 0, 1.0); (1, 1, 1.0); (0, 1, 0.0) ] in
  Csr.zero_values m;
  Csr.add_at m 0 1 5.0;
  check_float "add_at" 5.0 (Csr.get m 0 1);
  check_float "zeroed diag" 0.0 (Csr.get m 0 0);
  Alcotest.check_raises "add outside pattern"
    (Invalid_argument "Csr.add_at: (1,0) not in pattern") (fun () -> Csr.add_at m 1 0 1.0)

let test_cg_identity () =
  let m = Csr.of_triplets 4 (List.init 4 (fun i -> (i, i, 1.0))) in
  let b = [| 1.0; -2.0; 3.0; 0.5 |] and x = Vec.create 4 in
  let st = Cg.solve m ~b ~x in
  Alcotest.(check bool) "converged" true st.Cg.converged;
  Array.iteri (fun i bi -> check_float "solution" bi x.(i)) b

let test_cg_laplacian () =
  (* 1-D Dirichlet Laplacian, n = 20: compare to a dense-free exact
     solution u(i) = i*(n+1-i)/2 for f = 1. *)
  let n = 20 in
  let triplets = ref [] in
  for i = 0 to n - 1 do
    triplets := (i, i, 2.0) :: !triplets;
    if i > 0 then triplets := (i, i - 1, -1.0) :: !triplets;
    if i < n - 1 then triplets := (i, i + 1, -1.0) :: !triplets
  done;
  let m = Csr.of_triplets n !triplets in
  let b = Array.make n 1.0 and x = Vec.create n in
  let st = Cg.solve ~rtol:1e-12 m ~b ~x in
  Alcotest.(check bool) "converged" true st.Cg.converged;
  for i = 0 to n - 1 do
    let exact = float_of_int ((i + 1) * (n - i)) /. 2.0 in
    Alcotest.(check (float 1e-8)) (Printf.sprintf "u(%d)" i) exact x.(i)
  done

let test_cg_warm_start () =
  let m = Csr.of_triplets 3 [ (0, 0, 2.0); (1, 1, 2.0); (2, 2, 2.0) ] in
  let b = [| 2.0; 4.0; 6.0 |] in
  let x = [| 1.0; 2.0; 3.0 |] in
  (* exact guess *)
  let st = Cg.solve m ~b ~x in
  Alcotest.(check int) "zero iterations from exact guess" 0 st.Cg.iterations;
  Alcotest.(check bool) "converged" true st.Cg.converged

let test_dense_inv () =
  let a = [| [| 2.0; 1.0; 0.0 |]; [| 1.0; 3.0; 1.0 |]; [| 0.0; 1.0; 2.0 |] |] in
  let ai = Dense.inv a in
  (* A * A^-1 = I *)
  for i = 0 to 2 do
    for j = 0 to 2 do
      let s = ref 0.0 in
      for k = 0 to 2 do
        s := !s +. (a.(i).(k) *. ai.(k).(j))
      done;
      Alcotest.(check (float 1e-12)) "A*inv(A)=I" (if i = j then 1.0 else 0.0) !s
    done
  done

let test_dense_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "singular") (fun () -> ignore (Dense.inv a))

let test_solve3 () =
  let a = [| [| 1.0; 0.0; 0.0 |]; [| 0.0; 2.0; 0.0 |]; [| 1.0; 1.0; 1.0 |] |] in
  let x = Dense.solve3 a [| 3.0; 4.0; 10.0 |] in
  check_float "x" 3.0 x.(0);
  check_float "y" 2.0 x.(1);
  check_float "z" 5.0 x.(2)

let prop_cg_solves_spd =
  (* random diagonally dominant symmetric systems are SPD; CG must solve
     them to the requested tolerance *)
  QCheck.Test.make ~name:"cg solves random SPD systems" ~count:30
    QCheck.(pair (int_range 2 12) (int_range 0 10_000))
    (fun (n, seed) ->
      let rng = Opp_core.Rng.create seed in
      let a = Array.make_matrix n n 0.0 in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let v = Opp_core.Rng.float rng -. 0.5 in
          a.(i).(j) <- v;
          a.(j).(i) <- v
        done
      done;
      for i = 0 to n - 1 do
        let row_sum = Array.fold_left (fun acc v -> acc +. Float.abs v) 0.0 a.(i) in
        a.(i).(i) <- row_sum +. 1.0
      done;
      let triplets = ref [] in
      Array.iteri
        (fun i row -> Array.iteri (fun j v -> if v <> 0.0 then triplets := (i, j, v) :: !triplets) row)
        a;
      let m = Csr.of_triplets n !triplets in
      let x_true = Array.init n (fun i -> float_of_int (i + 1)) in
      let b = Vec.create n in
      Csr.spmv m x_true b;
      let x = Vec.create n in
      let st = Cg.solve ~rtol:1e-12 m ~b ~x in
      st.Cg.converged
      && Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) x x_true)

let suite =
  [
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "vec mismatch raises" `Quick test_vec_mismatch;
    Alcotest.test_case "csr assembly merges duplicates" `Quick test_csr_assembly;
    Alcotest.test_case "csr spmv" `Quick test_csr_spmv;
    Alcotest.test_case "csr pattern reuse" `Quick test_csr_pattern_reuse;
    Alcotest.test_case "cg identity" `Quick test_cg_identity;
    Alcotest.test_case "cg 1-D laplacian" `Quick test_cg_laplacian;
    Alcotest.test_case "cg warm start" `Quick test_cg_warm_start;
    Alcotest.test_case "dense inverse" `Quick test_dense_inv;
    Alcotest.test_case "dense singular raises" `Quick test_dense_singular;
    Alcotest.test_case "cramer solve3" `Quick test_solve3;
    QCheck_alcotest.to_alcotest prop_cg_solves_spd;
  ]
