(* Numerics tests for the particle-pusher family (paper section 2.3):
   exactness in pure E, norm preservation of the rotational pushers in
   pure B, second-order convergence to the analytic cyclotron orbit,
   and Vay's known non-conservation in pure B. Plus a snapshot-resume
   equivalence test for CabanaPIC via the generic context snapshot. *)

open Cabana

let speed v = sqrt ((v.(0) ** 2.0) +. (v.(1) ** 2.0) +. (v.(2) ** 2.0))

let test_pure_e_exact () =
  (* with B = 0 every pusher reduces to v += (q/m) E dt exactly *)
  List.iter
    (fun p ->
      let v = [| 1.0; -2.0; 0.5 |] in
      Pushers.push p ~qmdt2:0.05 ~ex:3.0 ~ey:1.0 ~ez:(-2.0) ~bx:0.0 ~by:0.0 ~bz:0.0 v;
      Alcotest.(check (float 1e-12)) (Pushers.to_string p ^ " vx") 1.3 v.(0);
      Alcotest.(check (float 1e-12)) (Pushers.to_string p ^ " vy") (-1.9) v.(1);
      Alcotest.(check (float 1e-12)) (Pushers.to_string p ^ " vz") 0.3 v.(2))
    Pushers.all

let test_pure_b_norm_preservation () =
  (* all three rotational pushers reduce to exact rotations in the
     non-relativistic limit: |v| invariant to machine precision (Vay's
     famous energy non-conservation is a relativistic gamma-update
     artifact that vanishes at gamma = 1) *)
  let rng = Opp_core.Rng.create 11 in
  List.iter
    (fun p ->
      let drift = ref 0.0 in
      for _ = 1 to 200 do
        let u () = (2.0 *. Opp_core.Rng.float rng) -. 1.0 in
        let v = [| u (); u (); u () |] in
        let s0 = speed v in
        Pushers.push p ~qmdt2:(u ()) ~ex:0.0 ~ey:0.0 ~ez:0.0 ~bx:(u ()) ~by:(u ()) ~bz:(u ()) v;
        drift := Float.max !drift (Float.abs (speed v -. s0) /. (1e-300 +. s0))
      done;
      Alcotest.(check bool) (Pushers.to_string p ^ " preserves |v|") true (!drift < 1e-12))
    [ Pushers.Boris; Pushers.Vay; Pushers.Higuera_cary ]

let cyclotron_error p ~dt ~steps =
  (* analytic: v rotates about +z at omega = q B / m = 1; compare after
     [steps] of size [dt] *)
  let v = [| 1.0; 0.0; 0.0 |] in
  for _ = 1 to steps do
    Pushers.push p ~qmdt2:(dt /. 2.0) ~ex:0.0 ~ey:0.0 ~ez:0.0 ~bx:0.0 ~by:0.0 ~bz:1.0 v
  done;
  let t = float_of_int steps *. dt in
  (* q = +1, B = +z: dv/dt = v x B rotates (1,0,0) toward -y *)
  let exact = [| cos t; -.sin t; 0.0 |] in
  sqrt
    (((v.(0) -. exact.(0)) ** 2.0)
    +. ((v.(1) -. exact.(1)) ** 2.0)
    +. ((v.(2) -. exact.(2)) ** 2.0))

let test_cyclotron_second_order () =
  (* halving dt must cut the phase error ~4x for the rotational pushers *)
  List.iter
    (fun p ->
      let coarse = cyclotron_error p ~dt:0.1 ~steps:10 in
      let fine = cyclotron_error p ~dt:0.05 ~steps:20 in
      let order = log (coarse /. fine) /. log 2.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s converges at order %.2f" (Pushers.to_string p) order)
        true (order > 1.7))
    [ Pushers.Boris; Pushers.Vay; Pushers.Higuera_cary ]

let test_pushers_agree_small_dt () =
  (* all rotational pushers coincide to O(dt^3) per step *)
  let v0 = [| 0.3; -0.7; 0.2 |] in
  let results =
    List.map
      (fun p ->
        let v = Array.copy v0 in
        Pushers.push p ~qmdt2:5e-4 ~ex:1.0 ~ey:(-0.5) ~ez:0.2 ~bx:0.3 ~by:0.1 ~bz:0.8 v;
        v)
      [ Pushers.Boris; Pushers.Vay; Pushers.Higuera_cary ]
  in
  match results with
  | [ a; b; c ] ->
      for d = 0 to 2 do
        Alcotest.(check bool) "boris~vay" true (Float.abs (a.(d) -. b.(d)) < 1e-8);
        Alcotest.(check bool) "boris~hc" true (Float.abs (a.(d) -. c.(d)) < 1e-8)
      done
  | _ -> assert false

let test_of_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "roundtrip" true
        (Pushers.of_string (Pushers.to_string p) = Some p))
    Pushers.all;
  Alcotest.(check bool) "unknown" true (Pushers.of_string "rk4" = None)

(* --- CabanaPIC resume via the generic context snapshot --- *)

let test_cabana_snapshot_resume () =
  let path = Filename.temp_file "oppic_cabana_snap" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let prm = { Cabana_params.default with Cabana_params.nz = 16; ppc = 8 } in
      let a = Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
      Cabana_sim.run a ~steps:20;
      Opp_core.Snapshot.save a.Cabana_sim.ctx path;
      Cabana_sim.run a ~steps:15;
      let b = Cabana_sim.create ~prm ~profile:(Opp_core.Profile.create ()) () in
      Opp_core.Snapshot.load b.Cabana_sim.ctx path;
      Cabana_sim.run b ~steps:15;
      let ea = Cabana_sim.energies a and eb = Cabana_sim.energies b in
      Alcotest.(check (float 0.0)) "bitwise E energy after resume" ea.Cabana_sim.e_field
        eb.Cabana_sim.e_field;
      Alcotest.(check (float 0.0)) "bitwise kinetic energy" ea.Cabana_sim.kinetic
        eb.Cabana_sim.kinetic)

let suite =
  [
    Alcotest.test_case "pure E exact for all pushers" `Quick test_pure_e_exact;
    Alcotest.test_case "pure B norm preservation" `Quick test_pure_b_norm_preservation;
    Alcotest.test_case "cyclotron second order" `Quick test_cyclotron_second_order;
    Alcotest.test_case "pushers agree at small dt" `Quick test_pushers_agree_small_dt;
    Alcotest.test_case "name roundtrip" `Quick test_of_string_roundtrip;
    Alcotest.test_case "cabana snapshot resume" `Slow test_cabana_snapshot_resume;
  ]
