(* Tests for the source-to-source translator: the template engine, the
   manifest parser, IR validation, and the shape of the generated code
   for each parallelization target. *)

let check_str = Alcotest.(check string)

(* --- template engine --- *)

let test_template_subst () =
  check_str "simple" "hello world"
    (Opp_codegen.Template.render "hello {{ name }}" [ ("name", Opp_codegen.Template.Str "world") ]);
  check_str "dotted" "x=3"
    (Opp_codegen.Template.render "x={{ p.x }}"
       [ ("p", Opp_codegen.Template.Assoc [ ("x", Opp_codegen.Template.Int 3) ]) ])

let test_template_for () =
  let env = [ ("xs", Opp_codegen.Template.(List [ Str "a"; Str "b"; Str "c" ])) ] in
  check_str "join with loop.last" "a,b,c"
    (Opp_codegen.Template.render "{% for x in xs %}{{ x }}{% if loop.last %}{% else %},{% endif %}{% endfor %}" env);
  check_str "loop.index" "0a 1b 2c "
    (Opp_codegen.Template.render "{% for x in xs %}{{ loop.index }}{{ x }} {% endfor %}" env)

let test_template_if_else () =
  let tpl = "{% if flag %}yes{% else %}no{% endif %}" in
  check_str "true" "yes" (Opp_codegen.Template.render tpl [ ("flag", Opp_codegen.Template.Bool true) ]);
  check_str "false" "no" (Opp_codegen.Template.render tpl [ ("flag", Opp_codegen.Template.Bool false) ])

let test_template_nested () =
  let env =
    [
      ( "rows",
        Opp_codegen.Template.(
          List
            [
              Assoc [ ("name", Str "a"); ("ok", Bool true) ];
              Assoc [ ("name", Str "b"); ("ok", Bool false) ];
            ]) );
    ]
  in
  check_str "nested for+if" "a! b "
    (Opp_codegen.Template.render
       "{% for r in rows %}{{ r.name }}{% if r.ok %}!{% endif %} {% endfor %}" env)

let test_template_errors () =
  let raises_error f =
    try
      ignore (f ());
      false
    with Opp_codegen.Template.Error _ -> true
  in
  Alcotest.(check bool) "unknown name" true
    (raises_error (fun () -> Opp_codegen.Template.render "{{ nope }}" []));
  Alcotest.(check bool) "unterminated" true
    (raises_error (fun () -> Opp_codegen.Template.render "{{ x " []));
  Alcotest.(check bool) "missing endfor" true
    (raises_error (fun () ->
         Opp_codegen.Template.render "{% for x in xs %}" [ ("xs", Opp_codegen.Template.List []) ]))

(* --- parser and IR validation --- *)

let fempic_spec = {|
program demo
set cells
set nodes
particle_set parts cells
map c2n cells nodes 2
map p2c parts cells 1
map c2c cells cells 2
dat nd nodes 1
dat pd parts 3
loop L1 kernel k1 over parts iterate all
  arg pd read
  arg nd idx 0 map c2n p2c p2c inc
end
move M kernel mk over parts c2c c2c p2c p2c
  arg pd rw
end
loop L2 kernel k2 over cells iterate all
  arg nd idx 0 map c2n read
end
|}

let test_parser_roundtrip () =
  let p = Opp_codegen.Parser.parse fempic_spec in
  Alcotest.(check string) "program name" "demo" p.Opp_codegen.Ir.p_name;
  Alcotest.(check int) "sets" 3 (List.length p.Opp_codegen.Ir.p_sets);
  Alcotest.(check int) "maps" 3 (List.length p.Opp_codegen.Ir.p_maps);
  Alcotest.(check int) "loops" 3 (List.length p.Opp_codegen.Ir.p_loops);
  match p.Opp_codegen.Ir.p_loops with
  | [ l1; m; _l2 ] ->
      Alcotest.(check string) "loop label" "L1" l1.Opp_codegen.Ir.l_name;
      Alcotest.(check int) "loop args" 2 (List.length l1.Opp_codegen.Ir.l_args);
      (match m.Opp_codegen.Ir.l_kind with
      | Opp_codegen.Ir.Particle_move { c2c; p2c } ->
          Alcotest.(check string) "c2c" "c2c" c2c;
          Alcotest.(check string) "p2c" "p2c" p2c
      | _ -> Alcotest.fail "expected a move loop")
  | _ -> Alcotest.fail "expected three loops"

let expect_parse_error spec fragment =
  try
    ignore (Opp_codegen.Parser.parse spec);
    Alcotest.fail "expected a parse error"
  with
  | Opp_codegen.Parser.Parse_error msg | Opp_codegen.Ir.Invalid msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions '%s' (got: %s)" fragment msg)
        true
        (let re = Str.regexp_string fragment in
         try
           ignore (Str.search_forward re msg 0);
           true
         with Not_found -> false)

let test_parser_errors () =
  expect_parse_error "bogus line" "cannot parse";
  expect_parse_error "loop L kernel k over s iterate all\n  arg d read" "not closed";
  expect_parse_error "set cells\nloop L kernel k over cells iterate all\nend" "no arguments"

let test_ir_validation () =
  expect_parse_error
    {|
set cells
dat d cells 1
loop L kernel k over cells iterate all
  arg missing read
end
|}
    "unknown dat";
  expect_parse_error
    {|
set cells
set nodes
map c2n cells nodes 2
dat nd nodes 1
loop L kernel k over cells iterate all
  arg nd idx 5 map c2n read
end
|}
    "out of arity";
  expect_parse_error
    {|
set cells
set nodes
dat nd nodes 1
loop L kernel k over cells iterate all
  arg nd read
end
|}
    "direct arg"

(* --- generated code shape --- *)

let program () = Opp_codegen.Parser.parse fempic_spec

let contains hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let check_contains code what needle =
  Alcotest.(check bool) (Printf.sprintf "%s contains %s" what needle) true (contains code needle)

let test_emit_seq () =
  let code = Opp_codegen.Emit.emit_program (program ()) Opp_codegen.Emit.Seq in
  check_contains code "seq" "void opp_par_loop_k1__seq";
  check_contains code "seq" "void opp_particle_move_mk__seq";
  (* double indirection resolved through both maps *)
  check_contains code "seq" "map_c2n[map_p2c[n] * 2 + 0] * 1";
  check_contains code "seq" "opp_particle_hole_fill";
  (* no device or MPI artefacts leak into the sequential build *)
  Alcotest.(check bool) "no cuda" false (contains code "__global__");
  Alcotest.(check bool) "no halo" false (contains code "opp_halo_exchange")

let test_emit_omp () =
  let code = Opp_codegen.Emit.emit_program (program ()) Opp_codegen.Emit.Omp in
  check_contains code "omp" "#pragma omp parallel for";
  (* the scatter-array strategy for the indirect increment *)
  check_contains code "omp" "opp_scatter_alloc";
  check_contains code "omp" "opp_scatter_reduce";
  check_contains code "omp" "scatter_nd[tid *"

let test_emit_cuda_hip () =
  let cuda = Opp_codegen.Emit.emit_program (program ()) Opp_codegen.Emit.Cuda in
  check_contains cuda "cuda" "__global__ void opp_dev_k1";
  check_contains cuda "cuda" "opp_atomic_add";
  check_contains cuda "cuda" "while (status == OPP_NEED_MOVE)";
  let hip = Opp_codegen.Emit.emit_program (program ()) Opp_codegen.Emit.Hip in
  check_contains hip "hip" "#include <hip/hip_runtime.h>";
  check_contains hip "hip" "opp_par_loop_k1__hip"

let test_emit_mpi () =
  let code = Opp_codegen.Emit.emit_program (program ()) Opp_codegen.Emit.Mpi in
  (* indirect read in L2 imports its halo; the indirect increment in
     L1 pushes halo contributions back to the owners *)
  check_contains code "mpi" "opp_halo_exchange(arg0)";
  check_contains code "mpi" "opp_halo_reduce(arg1)";
  check_contains code "mpi" "opp_move_pack";
  check_contains code "mpi" "opp_particle_exchange"

let test_emit_sycl () =
  (* the paper's future-work Intel GPU target: added as one template *)
  let code = Opp_codegen.Emit.emit_program (program ()) Opp_codegen.Emit.Sycl in
  check_contains code "sycl" "#include <sycl/sycl.hpp>";
  check_contains code "sycl" "parallel_for";
  check_contains code "sycl" "sycl::atomic_ref";
  check_contains code "sycl" "opp_par_loop_k1__sycl";
  check_contains code "sycl" "while (status == OPP_NEED_MOVE)"

let test_emit_all_targets () =
  let files = Opp_codegen.Emit.emit_all (program ()) in
  Alcotest.(check int) "six targets" 6 (List.length files);
  List.iter
    (fun (name, code) ->
      Alcotest.(check bool) (name ^ " nonempty") true (String.length code > 200);
      check_contains code name "Auto-generated by the OP-PIC translator")
    files

let rec find_up dir path =
  let candidate = Filename.concat dir path in
  if Sys.file_exists candidate then candidate
  else
    let parent = Filename.dirname dir in
    if parent = dir then failwith (path ^ " not found above " ^ Sys.getcwd ())
    else find_up parent path

let test_emit_fempic_manifest () =
  (* the shipped Mini-FEM-PIC manifest translates cleanly end to end *)
  let source =
    let ic = open_in (find_up (Sys.getcwd ()) "examples/specs/fempic.oppic") in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let p = Opp_codegen.Parser.parse source in
  Alcotest.(check int) "six loops" 6 (List.length p.Opp_codegen.Ir.p_loops);
  List.iter
    (fun (_, code) -> Alcotest.(check bool) "generated" true (String.length code > 500))
    (Opp_codegen.Emit.emit_all p)

let suite =
  [
    Alcotest.test_case "template: substitution" `Quick test_template_subst;
    Alcotest.test_case "template: for loops" `Quick test_template_for;
    Alcotest.test_case "template: if/else" `Quick test_template_if_else;
    Alcotest.test_case "template: nesting" `Quick test_template_nested;
    Alcotest.test_case "template: errors" `Quick test_template_errors;
    Alcotest.test_case "parser: roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser: errors" `Quick test_parser_errors;
    Alcotest.test_case "ir: validation" `Quick test_ir_validation;
    Alcotest.test_case "emit: seq" `Quick test_emit_seq;
    Alcotest.test_case "emit: omp scatter arrays" `Quick test_emit_omp;
    Alcotest.test_case "emit: cuda/hip" `Quick test_emit_cuda_hip;
    Alcotest.test_case "emit: mpi halos" `Quick test_emit_mpi;
    Alcotest.test_case "emit: sycl (future-work target)" `Quick test_emit_sycl;
    Alcotest.test_case "emit: all targets" `Quick test_emit_all_targets;
    Alcotest.test_case "emit: fempic manifest" `Quick test_emit_fempic_manifest;
  ]
