(* The Landau-damping application: quiet-start loading quality and the
   headline kinetic validation — the measured collisionless damping
   rate against Landau's analytic result. *)

open Landau

let run_history prm steps =
  let sim = Landau_sim.create ~prm () in
  let hist = Array.make steps 0.0 in
  for s = 0 to steps - 1 do
    Landau_sim.step sim;
    hist.(s) <- Landau_sim.field_energy sim
  done;
  (sim, hist)

let test_quiet_start_moments () =
  let prm = Landau_sim.default in
  let sim = Landau_sim.create ~prm () in
  let n = sim.Landau_sim.parts.Opp_core.Types.s_size in
  Alcotest.(check int) "population" (prm.Landau_sim.nz * prm.Landau_sim.ppc) n;
  (* the antithetic-pair loading leaves essentially no mean drift and a
     thermal spread at vth *)
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for p = 0 to n - 1 do
    let v = sim.Landau_sim.part_v.Opp_core.Types.d_data.(p) in
    sum := !sum +. v;
    sum2 := !sum2 +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let sigma = sqrt (!sum2 /. float_of_int n) in
  Alcotest.(check bool) (Printf.sprintf "mean drift %.2e ~ 0" mean) true
    (Float.abs mean < 0.05 *. prm.Landau_sim.vth);
  Alcotest.(check bool) (Printf.sprintf "thermal spread %.3f ~ vth" sigma) true
    (Float.abs (sigma -. prm.Landau_sim.vth) < 0.05 *. prm.Landau_sim.vth)

let test_charge_neutral_deposit () =
  let sim = Landau_sim.create () in
  Landau_sim.deposit sim;
  (* electron charge exactly cancels the ion background on average *)
  let mean =
    Array.fold_left ( +. ) 0.0 sim.Landau_sim.cell_rho.Opp_core.Types.d_data
    /. float_of_int sim.Landau_sim.prm.Landau_sim.nz
  in
  Alcotest.(check (float 1e-9)) "mean charge density" 0.0 mean

let test_field_energy_decays () =
  let _, hist = run_history Landau_sim.default 120 in
  Alcotest.(check bool)
    (Printf.sprintf "decayed %.2e -> %.2e" hist.(0) hist.(110))
    true
    (hist.(110) < 0.05 *. hist.(0))

let test_landau_damping_rate () =
  (* the headline: measured gamma vs Landau's kinetic rate at
     k lambda_D = 0.5, within 10% *)
  let prm = Landau_sim.default in
  let _, hist = run_history prm 90 in
  match Landau_sim.fit_damping_rate ~dt:prm.Landau_sim.dt (Array.sub hist 0 80) with
  | None -> Alcotest.fail "no damping fit"
  | Some gamma ->
      let theory = Landau_sim.theoretical_damping_rate prm in
      Alcotest.(check bool)
        (Printf.sprintf "gamma %.4f vs theory %.4f" gamma theory)
        true
        (Float.abs (gamma -. theory) < 0.1 *. theory)

let test_stable_long_wavelength () =
  (* at k lambda_D = 0.2 damping is essentially zero: the wave must
     persist where the 0.5 case has collapsed *)
  let prm = { Landau_sim.default with Landau_sim.k_ld = 0.2; ppc = 400 } in
  Alcotest.(check bool) "theory negligible" true
    (Landau_sim.theoretical_damping_rate prm < 1e-3);
  let _, hist = run_history prm 120 in
  Alcotest.(check bool)
    (Printf.sprintf "persists %.2e -> %.2e" hist.(0) hist.(110))
    true
    (hist.(110) > 0.3 *. hist.(0))

let test_particles_conserved () =
  let sim, _ = run_history { Landau_sim.default with Landau_sim.ppc = 100 } 50 in
  Alcotest.(check int) "periodic ring loses nothing"
    (Landau_sim.default.Landau_sim.nz * 100)
    sim.Landau_sim.parts.Opp_core.Types.s_size

let test_normal_quantile () =
  Alcotest.(check (float 1e-8)) "median" 0.0 (Opp_core.Rng.normal_quantile 0.5);
  Alcotest.(check (float 1e-6)) "97.5%" 1.959964 (Opp_core.Rng.normal_quantile 0.975);
  Alcotest.(check (float 1e-6)) "2.5%" (-1.959964) (Opp_core.Rng.normal_quantile 0.025);
  Alcotest.(check (float 1e-5)) "one sigma" 1.0 (Opp_core.Rng.normal_quantile 0.8413447);
  Alcotest.check_raises "domain" (Invalid_argument "Rng.normal_quantile: p must be in (0,1)")
    (fun () -> ignore (Opp_core.Rng.normal_quantile 0.0))

let suite =
  [
    Alcotest.test_case "normal quantile" `Quick test_normal_quantile;
    Alcotest.test_case "quiet start moments" `Quick test_quiet_start_moments;
    Alcotest.test_case "charge-neutral deposit" `Quick test_charge_neutral_deposit;
    Alcotest.test_case "field energy decays" `Slow test_field_energy_decays;
    Alcotest.test_case "Landau damping rate vs theory" `Slow test_landau_damping_rate;
    Alcotest.test_case "long wavelength persists" `Slow test_stable_long_wavelength;
    Alcotest.test_case "particles conserved" `Quick test_particles_conserved;
  ]
