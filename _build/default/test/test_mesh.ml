(* Tests for the mesh substrate: tet geometry, the Kuhn duct mesh,
   the periodic cuboid, the structured overlay, and mesh I/O. *)

open Opp_mesh

let check_float = Alcotest.(check (float 1e-12))

let unit_tet = [| [| 0.0; 0.0; 0.0 |]; [| 1.0; 0.0; 0.0 |]; [| 0.0; 1.0; 0.0 |]; [| 0.0; 0.0; 1.0 |] |]

let test_tet_volume () =
  check_float "unit tet volume" (1.0 /. 6.0)
    (Geom.tet_volume unit_tet.(0) unit_tet.(1) unit_tet.(2) unit_tet.(3));
  (* swapping two vertices flips the sign but not the magnitude *)
  check_float "signed volume flips" (-1.0 /. 6.0)
    (Geom.tet_volume_signed unit_tet.(0) unit_tet.(2) unit_tet.(1) unit_tet.(3))

let test_barycentric_partition_of_unity () =
  let coeff = Geom.bary_coefficients unit_tet in
  let lc = Array.make 4 0.0 in
  Geom.barycentric coeff ~off:0 ~x:0.2 ~y:0.3 ~z:0.1 lc;
  check_float "sums to one" 1.0 (lc.(0) +. lc.(1) +. lc.(2) +. lc.(3));
  (* interpolation property at vertices *)
  Array.iteri
    (fun i v ->
      Geom.barycentric coeff ~off:0 ~x:v.(0) ~y:v.(1) ~z:v.(2) lc;
      Array.iteri (fun j w -> check_float "delta_ij" (if i = j then 1.0 else 0.0) w) lc)
    unit_tet

let test_inside_and_exit_face () =
  let coeff = Geom.bary_coefficients unit_tet in
  let lc = Array.make 4 0.0 in
  Geom.barycentric coeff ~off:0 ~x:0.25 ~y:0.25 ~z:0.25 lc;
  Alcotest.(check bool) "centroid inside" true (Geom.inside lc);
  Geom.barycentric coeff ~off:0 ~x:(-0.5) ~y:0.25 ~z:0.25 lc;
  Alcotest.(check bool) "outside -x" false (Geom.inside lc);
  (* leaving through -x means lc of vertex 1 (the +x vertex) is most negative *)
  Alcotest.(check int) "exit face" 1 (Geom.most_negative lc)

let test_triangle_area () =
  let area, n = Geom.triangle_area_normal [| 0.; 0.; 0. |] [| 2.; 0.; 0. |] [| 0.; 2.; 0. |] in
  check_float "area" 2.0 area;
  check_float "unit normal z" 1.0 (Float.abs n.(2))

let test_duct_mesh_counts () =
  let m = Tet_mesh.build ~nx:3 ~ny:2 ~nz:4 ~lx:0.3 ~ly:0.2 ~lz:0.4 in
  Alcotest.(check int) "cells = 6 per hex" (6 * 3 * 2 * 4) m.Tet_mesh.ncells;
  Alcotest.(check int) "nodes" (4 * 3 * 5) m.Tet_mesh.nnodes

let test_duct_mesh_volume () =
  let m = Tet_mesh.build ~nx:3 ~ny:2 ~nz:4 ~lx:0.3 ~ly:0.2 ~lz:0.4 in
  Alcotest.(check (float 1e-12)) "tet volumes tile the box" (0.3 *. 0.2 *. 0.4)
    (Tet_mesh.total_volume m);
  Array.iter (fun v -> Alcotest.(check bool) "positive volume" true (v > 0.0)) m.Tet_mesh.cell_volume;
  (* node volumes also tile the box *)
  Alcotest.(check (float 1e-12)) "node volumes tile the box" (0.3 *. 0.2 *. 0.4)
    (Array.fold_left ( +. ) 0.0 m.Tet_mesh.node_volume)

let test_duct_adjacency_symmetric () =
  let m = Tet_mesh.build ~nx:2 ~ny:2 ~nz:2 ~lx:1.0 ~ly:1.0 ~lz:1.0 in
  let boundary = ref 0 in
  for c = 0 to m.Tet_mesh.ncells - 1 do
    for i = 0 to 3 do
      let n = m.Tet_mesh.cell_cell.((4 * c) + i) in
      if n = -1 then incr boundary
      else begin
        (* the neighbour must point back at us through some face *)
        let back = ref false in
        for j = 0 to 3 do
          if m.Tet_mesh.cell_cell.((4 * n) + j) = c then back := true
        done;
        Alcotest.(check bool) "adjacency is symmetric" true !back
      end
    done
  done;
  (* surface of the box: each unit square face is two triangles; total
     boundary faces = 2*(nx*ny + ny*nz + nx*nz)*2 *)
  Alcotest.(check int) "boundary face count" (2 * 2 * (4 + 4 + 4)) !boundary

let test_duct_inlet_faces () =
  let nx, ny, nz = (3, 2, 4) in
  let m = Tet_mesh.build ~nx ~ny ~nz ~lx:0.3 ~ly:0.2 ~lz:0.4 in
  (* the inlet plane is nx*ny squares, each covered by two tet faces *)
  Alcotest.(check int) "inlet faces" (2 * nx * ny) (Array.length m.Tet_mesh.inlet_faces);
  let total_area =
    Array.fold_left (fun acc f -> acc +. f.Tet_mesh.f_area) 0.0 m.Tet_mesh.inlet_faces
  in
  Alcotest.(check (float 1e-12)) "inlet area" (0.3 *. 0.2) total_area;
  Array.iter
    (fun f -> Alcotest.(check (float 1e-12)) "inlet normal +z" 1.0 f.Tet_mesh.f_normal.(2))
    m.Tet_mesh.inlet_faces

let test_duct_node_kinds () =
  let m = Tet_mesh.build ~nx:4 ~ny:4 ~nz:6 ~lx:1.0 ~ly:1.0 ~lz:2.0 in
  let count k = Array.fold_left (fun acc v -> if v = k then acc + 1 else acc) 0 m.Tet_mesh.node_kind in
  (* interior of inlet plane: (nx-1)*(ny-1) nodes *)
  Alcotest.(check int) "inlet nodes" (3 * 3) (count Tet_mesh.Inlet);
  Alcotest.(check int) "outlet nodes" (3 * 3) (count Tet_mesh.Outlet);
  (* walls: all nodes on x/y boundary across all z layers *)
  Alcotest.(check int) "wall nodes" (((5 * 5) - (3 * 3)) * 7) (count Tet_mesh.Wall);
  Alcotest.(check int) "interior nodes" (3 * 3 * 5) (count Tet_mesh.Interior)

let test_locate_brute () =
  let m = Tet_mesh.build ~nx:2 ~ny:2 ~nz:2 ~lx:1.0 ~ly:1.0 ~lz:1.0 in
  (match Tet_mesh.locate_brute m ~x:0.3 ~y:0.6 ~z:0.9 with
  | Some c -> Alcotest.(check bool) "cell in range" true (c >= 0 && c < m.Tet_mesh.ncells)
  | None -> Alcotest.fail "interior point not located");
  Alcotest.(check bool) "outside not located" true
    (Tet_mesh.locate_brute m ~x:1.5 ~y:0.5 ~z:0.5 = None)

let prop_barycentric_consistent_with_volume =
  (* for random points inside the unit tet, barycentric coords are in
     [0,1] and reproduce the point as a convex combination *)
  QCheck.Test.make ~name:"barycentric reconstructs positions" ~count:100
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Opp_core.Rng.create seed in
      let coeff = Geom.bary_coefficients unit_tet in
      let lc = Array.make 4 0.0 in
      (* rejection-sample an interior point *)
      let rec sample () =
        let x = Opp_core.Rng.float rng and y = Opp_core.Rng.float rng in
        let z = Opp_core.Rng.float rng in
        if x +. y +. z <= 1.0 then (x, y, z) else sample ()
      in
      let x, y, z = sample () in
      Geom.barycentric coeff ~off:0 ~x ~y ~z lc;
      let rx = ref 0.0 and ry = ref 0.0 and rz = ref 0.0 in
      Array.iteri
        (fun i w ->
          rx := !rx +. (w *. unit_tet.(i).(0));
          ry := !ry +. (w *. unit_tet.(i).(1));
          rz := !rz +. (w *. unit_tet.(i).(2)))
        lc;
      Geom.inside lc
      && Float.abs (!rx -. x) < 1e-10
      && Float.abs (!ry -. y) < 1e-10
      && Float.abs (!rz -. z) < 1e-10)

let test_hex_mesh_periodic () =
  let m = Hex_mesh.build ~nx:4 ~ny:3 ~nz:2 ~lx:4.0 ~ly:3.0 ~lz:2.0 in
  Alcotest.(check int) "cells" 24 m.Hex_mesh.ncells;
  let c = Hex_mesh.cell_id m 0 0 0 in
  Alcotest.(check int) "wrap -x" (Hex_mesh.cell_id m 3 0 0)
    (Hex_mesh.neighbour m c ~dx:(-1) ~dy:0 ~dz:0);
  Alcotest.(check int) "wrap -y -z" (Hex_mesh.cell_id m 0 2 1)
    (Hex_mesh.neighbour m c ~dx:0 ~dy:(-1) ~dz:(-1));
  Alcotest.(check int) "self slot" c (Hex_mesh.neighbour m c ~dx:0 ~dy:0 ~dz:0);
  (* ijk round trip *)
  for cc = 0 to m.Hex_mesh.ncells - 1 do
    let i, j, k = Hex_mesh.cell_ijk m cc in
    Alcotest.(check int) "ijk roundtrip" cc (Hex_mesh.cell_id m i j k)
  done

let test_hex_face_neighbours () =
  let m = Hex_mesh.build ~nx:3 ~ny:3 ~nz:3 ~lx:1.0 ~ly:1.0 ~lz:1.0 in
  let f = Hex_mesh.face_neighbours m in
  let c = Hex_mesh.cell_id m 1 1 1 in
  Alcotest.(check int) "+x face" (Hex_mesh.cell_id m 2 1 1) f.((6 * c) + 1);
  Alcotest.(check int) "-z face" (Hex_mesh.cell_id m 1 1 0) f.((6 * c) + 4);
  (* every neighbour relation is symmetric: +x of c has c as -x *)
  for cc = 0 to m.Hex_mesh.ncells - 1 do
    let nb = f.((6 * cc) + 1) in
    Alcotest.(check int) "symmetry" cc f.(6 * nb)
  done

let test_overlay_locates () =
  let m = Tet_mesh.build ~nx:3 ~ny:3 ~nz:6 ~lx:1.0 ~ly:1.0 ~lz:2.0 in
  let ov = Overlay.of_tet_mesh ~bins:(8, 8, 16) m in
  (* overlay must send interior points to a nearby (<= few hops) cell;
     here we check it lands on the exact containing cell for bin centres
     and a valid cell elsewhere *)
  let lc = Array.make 4 0.0 in
  let ok = ref 0 and total = ref 0 in
  let rng = Opp_core.Rng.create 7 in
  for _ = 1 to 200 do
    let x = Opp_core.Rng.float rng *. 0.999 and y = Opp_core.Rng.float rng *. 0.999 in
    let z = Opp_core.Rng.float rng *. 1.999 in
    let c = Overlay.locate ov ~x ~y ~z in
    incr total;
    Alcotest.(check bool) "locate returns a cell" true (c >= 0 && c < m.Tet_mesh.ncells);
    Geom.barycentric m.Tet_mesh.cell_bary ~off:(16 * c) ~x ~y ~z lc;
    if Geom.inside lc then incr ok
  done;
  (* the overlay is only a hint (direct-hop finishes with a short
     multi-hop walk), but a good fraction should land exactly *)
  Alcotest.(check bool)
    (Printf.sprintf "enough hints exact (%d/%d)" !ok !total)
    true
    (float_of_int !ok /. float_of_int !total > 0.3);
  Alcotest.(check int) "outside the box" (-1) (Overlay.locate ov ~x:(-0.1) ~y:0.5 ~z:0.5)

let test_overlay_rank_map () =
  let m = Tet_mesh.build ~nx:2 ~ny:2 ~nz:4 ~lx:1.0 ~ly:1.0 ~lz:2.0 in
  let ov = Overlay.of_tet_mesh ~bins:(4, 4, 8) m in
  (* two ranks split along z at the midpoint *)
  let cell_rank =
    Array.init m.Tet_mesh.ncells (fun c ->
        if m.Tet_mesh.cell_centroid.((3 * c) + 2) < 1.0 then 0 else 1)
  in
  Overlay.assign_ranks ov ~cell_rank;
  Alcotest.(check int) "front is rank 0" 0 (Overlay.rank_of ov ~x:0.5 ~y:0.5 ~z:0.25);
  Alcotest.(check int) "back is rank 1" 1 (Overlay.rank_of ov ~x:0.5 ~y:0.5 ~z:1.75);
  Alcotest.(check bool) "bookkeeping memory counted" true (Overlay.memory_bytes ov > 0)

let test_mesh_io_roundtrip () =
  let m = Tet_mesh.build ~nx:2 ~ny:2 ~nz:3 ~lx:0.2 ~ly:0.2 ~lz:0.3 in
  let path = Filename.temp_file "oppic_mesh" ".dat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Mesh_io.write_tet m path;
      let raw = Mesh_io.read_raw path in
      Alcotest.(check int) "nodes" m.Tet_mesh.nnodes raw.Mesh_io.nnodes;
      Alcotest.(check int) "cells" m.Tet_mesh.ncells raw.Mesh_io.ncells;
      Array.iteri
        (fun i v -> Alcotest.(check (float 0.0)) "coords exact" v raw.Mesh_io.node_pos.(i))
        m.Tet_mesh.node_pos;
      Alcotest.(check bool) "connectivity equal" true (raw.Mesh_io.cell_nodes = m.Tet_mesh.cell_nodes))

let test_mesh_io_errors () =
  let path = Filename.temp_file "oppic_bad" ".dat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "nodes 1\n0 0 0\ncells 1\n0 0 0 9\n";
      close_out oc;
      Alcotest.(check bool) "node range checked" true
        (try
           ignore (Mesh_io.read_raw path);
           false
         with Mesh_io.Parse_error _ -> true))

let suite =
  [
    Alcotest.test_case "tet volume" `Quick test_tet_volume;
    Alcotest.test_case "barycentric partition of unity" `Quick test_barycentric_partition_of_unity;
    Alcotest.test_case "inside test and exit face" `Quick test_inside_and_exit_face;
    Alcotest.test_case "triangle area/normal" `Quick test_triangle_area;
    Alcotest.test_case "duct: counts" `Quick test_duct_mesh_counts;
    Alcotest.test_case "duct: volumes tile the box" `Quick test_duct_mesh_volume;
    Alcotest.test_case "duct: adjacency symmetric" `Quick test_duct_adjacency_symmetric;
    Alcotest.test_case "duct: inlet faces" `Quick test_duct_inlet_faces;
    Alcotest.test_case "duct: node classification" `Quick test_duct_node_kinds;
    Alcotest.test_case "duct: brute-force locate" `Quick test_locate_brute;
    QCheck_alcotest.to_alcotest prop_barycentric_consistent_with_volume;
    Alcotest.test_case "hex: periodic connectivity" `Quick test_hex_mesh_periodic;
    Alcotest.test_case "hex: face neighbours" `Quick test_hex_face_neighbours;
    Alcotest.test_case "overlay: locate" `Quick test_overlay_locates;
    Alcotest.test_case "overlay: rank map" `Quick test_overlay_rank_map;
    Alcotest.test_case "mesh io: roundtrip" `Quick test_mesh_io_roundtrip;
    Alcotest.test_case "mesh io: errors" `Quick test_mesh_io_errors;
  ]
