test/test_backends.ml: Alcotest Array Cabana Fempic Float Fun Opp Opp_core Opp_gpu Opp_mesh Opp_perf Opp_thread Profile QCheck QCheck_alcotest Rng Runner Seq View
