test/test_fempic.ml: Alcotest Array Checkpoint Collisions Fempic Fempic_sim Field_solver Filename Float Fun Opp Opp_core Opp_mesh Params Printf Profile QCheck QCheck_alcotest Rng Runner Seq Sys Types
