test/test_core.ml: Alcotest Array Fun List Opp Opp_core Particle Profile QCheck QCheck_alcotest Rng Seq
