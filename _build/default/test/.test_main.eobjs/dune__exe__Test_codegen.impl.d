test/test_codegen.ml: Alcotest Filename Fun List Opp_codegen Printf Str String Sys
