test/test_dist.ml: Alcotest Apps_dist Array Cabana Exch Fempic Float Fun List Mailbox Opp_core Opp_dist Opp_mesh Partition Printf Tet_part Traffic Types
