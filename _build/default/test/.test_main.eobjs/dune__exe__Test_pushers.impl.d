test/test_pushers.ml: Alcotest Array Cabana Cabana_params Cabana_sim Filename Float Fun List Opp_core Printf Pushers Sys
