test/test_perf.ml: Alcotest Buffer Experiments Float Format List Opp_core Opp_dist Opp_perf Str
