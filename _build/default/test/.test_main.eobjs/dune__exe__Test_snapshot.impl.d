test/test_snapshot.ml: Alcotest Arg Array Filename Fun Opp Opp_core Profile Seq Snapshot Sys View
