test/test_main.ml: Alcotest Test_backends Test_cabana Test_codegen Test_core Test_dist Test_fempic Test_la Test_landau Test_mesh Test_perf Test_pushers Test_snapshot
