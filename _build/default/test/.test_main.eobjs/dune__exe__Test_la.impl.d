test/test_la.ml: Alcotest Array Cg Csr Dense Float List Opp_core Opp_la Printf QCheck QCheck_alcotest Vec
