test/test_mesh.ml: Alcotest Array Filename Float Fun Geom Hex_mesh Mesh_io Opp_core Opp_mesh Overlay Printf QCheck QCheck_alcotest Sys Tet_mesh
