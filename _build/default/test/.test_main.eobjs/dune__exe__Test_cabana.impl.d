test/test_cabana.ml: Alcotest Array Cabana Cabana_params Cabana_phys Cabana_sim Diagnostics Float Opp_core Opp_mesh Option Printf QCheck QCheck_alcotest
