test/test_landau.ml: Alcotest Array Float Landau Landau_sim Opp_core Printf
