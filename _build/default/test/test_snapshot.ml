(* Tests for the generic context snapshot (binary state persistence of
   any DSL application) and extra core-engine behaviours: owned-only
   iteration, ranged movers, and view/arg edge cases. *)

open Opp_core
open Opp_core.Types

let check_float = Alcotest.(check (float 1e-12))

let with_temp f =
  let path = Filename.temp_file "oppic_snap" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let build_ctx () =
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 6 in
  let parts = Opp.decl_particle_set ctx ~name:"parts" cells in
  let p2c = Opp.decl_map ctx ~name:"p2c" ~from:parts ~to_:cells ~arity:1 None in
  let field = Opp.decl_dat ctx ~name:"field" ~set:cells ~dim:2 None in
  let weight = Opp.decl_dat ctx ~name:"weight" ~set:parts ~dim:1 None in
  (ctx, cells, parts, p2c, field, weight)

let test_snapshot_roundtrip () =
  with_temp (fun path ->
      let ctx, _, parts, p2c, field, weight = build_ctx () in
      ignore (Opp.inject parts 4);
      Opp.reset_injected parts;
      for i = 0 to 11 do
        field.d_data.(i) <- float_of_int i *. 1.5
      done;
      for p = 0 to 3 do
        weight.d_data.(p) <- float_of_int (p * p);
        p2c.m_data.(p) <- p mod 6
      done;
      Snapshot.save ctx path;
      (* restore into a fresh context with a different population *)
      let ctx2, _, parts2, p2c2, field2, weight2 = build_ctx () in
      ignore (Opp.inject parts2 9);
      Snapshot.load ctx2 path;
      Alcotest.(check int) "population restored" 4 parts2.s_size;
      for i = 0 to 11 do
        check_float "field values" field.d_data.(i) field2.d_data.(i)
      done;
      for p = 0 to 3 do
        check_float "weights" weight.d_data.(p) weight2.d_data.(p);
        Alcotest.(check int) "p2c" p2c.m_data.(p) p2c2.m_data.(p)
      done)

let test_snapshot_detects_mismatches () =
  with_temp (fun path ->
      let ctx, _, _, _, _, _ = build_ctx () in
      Snapshot.save ctx path;
      (* a context with a differently sized mesh set must be rejected *)
      let ctx2 = Opp.init () in
      let _ = Opp.decl_set ctx2 ~name:"cells" 7 in
      Alcotest.(check bool) "mesh size mismatch" true
        (try
           Snapshot.load ctx2 path;
           false
         with Snapshot.Corrupt _ -> true);
      (* a context missing a dat must be rejected *)
      let ctx3 = Opp.init () in
      let cells3 = Opp.decl_set ctx3 ~name:"cells" 6 in
      let parts3 = Opp.decl_particle_set ctx3 ~name:"parts" cells3 in
      let _ = Opp.decl_map ctx3 ~name:"p2c" ~from:parts3 ~to_:cells3 ~arity:1 None in
      Alcotest.(check bool) "missing dat" true
        (try
           Snapshot.load ctx3 path;
           false
         with Snapshot.Corrupt _ -> true))

let test_snapshot_rejects_garbage () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "garbage";
      close_out oc;
      let ctx, _, _, _, _, _ = build_ctx () in
      Alcotest.(check bool) "garbage rejected" true
        (try
           Snapshot.load ctx path;
           false
         with Snapshot.Corrupt _ -> true))

(* --- extra core-engine behaviours --- *)

let test_iterate_core_respects_exec_size () =
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 10 in
  cells.s_exec_size <- 6 (* elements 6..9 are halo copies *);
  let d = Opp.decl_dat ctx ~name:"d" ~set:cells ~dim:1 None in
  Opp.par_loop ~name:"mark" (fun v -> View.set v.(0) 0 1.0) cells Opp.core
    [ Opp.arg_dat d Opp.write ];
  for c = 0 to 5 do
    check_float "owned marked" 1.0 d.d_data.(c)
  done;
  for c = 6 to 9 do
    check_float "halo untouched" 0.0 d.d_data.(c)
  done;
  (* Iterate_all still covers everything *)
  Opp.par_loop ~name:"mark" (fun v -> View.set v.(0) 0 2.0) cells Opp.all
    [ Opp.arg_dat d Opp.write ];
  check_float "halo covered by all" 2.0 d.d_data.(9)

let test_move_injected_range_only () =
  (* the distributed backend continues only freshly received particles *)
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 4 in
  let parts = Opp.decl_particle_set ctx ~name:"p" cells in
  let p2c = Opp.decl_map ctx ~name:"p2c" ~from:parts ~to_:cells ~arity:1 None in
  let touched = Opp.decl_dat ctx ~name:"touched" ~set:parts ~dim:1 None in
  ignore (Opp.inject parts 3);
  Opp.reset_injected parts;
  ignore (Opp.inject parts 2);
  for p = 0 to 4 do
    p2c.m_data.(p) <- 0
  done;
  let kern views (mc : Seq.move_ctx) =
    View.set views.(0) 0 1.0;
    ignore mc;
    mc.Seq.status <- Seq.Move_done
  in
  let r =
    Seq.particle_move ~iterate:Seq.Iterate_injected ~name:"resume" kern parts ~p2c
      [ Opp.arg_dat touched Opp.rw ]
  in
  Alcotest.(check int) "moved only the new ones" 2 r.Seq.mv_moved;
  check_float "old untouched" 0.0 touched.d_data.(0);
  check_float "new touched" 1.0 touched.d_data.(3);
  check_float "new touched" 1.0 touched.d_data.(4)

let test_view_helpers () =
  let v = View.of_array [| 1.0; 2.0; 3.0; 4.0 |] 2 in
  v.View.base <- 2;
  Alcotest.(check (array (float 0.0))) "to_array" [| 3.0; 4.0 |] (View.to_array v);
  View.blit_from v [| 9.0; 8.0 |];
  check_float "blit" 9.0 (View.get v 0);
  View.fill v 0.5;
  check_float "fill" 0.5 (View.get v 1)

let test_arg_bytes_model () =
  let ctx = Opp.init () in
  let cells = Opp.decl_set ctx ~name:"cells" 2 in
  let nodes = Opp.decl_set ctx ~name:"nodes" 3 in
  let c2n =
    Opp.decl_map ctx ~name:"c2n" ~from:cells ~to_:nodes ~arity:2 (Some [| 0; 1; 1; 2 |])
  in
  let nd = Opp.decl_dat ctx ~name:"nd" ~set:nodes ~dim:3 None in
  let cd = Opp.decl_dat ctx ~name:"cd" ~set:cells ~dim:3 None in
  (* direct read: dim*8 *)
  Alcotest.(check int) "direct read" 24 (Arg.bytes_per_elem (Opp.arg_dat cd Opp.read));
  (* indirect inc: 2x data for read-modify-write + 4 for the map entry *)
  Alcotest.(check int) "indirect inc" 52
    (Arg.bytes_per_elem (Opp.arg_dat_i nd ~idx:0 ~map:c2n Opp.inc));
  (* globals are register-resident *)
  Alcotest.(check int) "gbl free" 0 (Arg.bytes_per_elem (Opp.arg_gbl [| 0.0 |] Opp.inc))

let test_profile_timed_and_intensity () =
  let prof = Profile.create () in
  let r = Profile.timed ~t:prof ~name:"phase" ~flops:100.0 ~bytes:50.0 (fun () -> 42) in
  Alcotest.(check int) "returns" 42 r;
  match Profile.entries ~t:prof () with
  | [ ("phase", e) ] ->
      Alcotest.(check (option (float 1e-12))) "intensity" (Some 2.0) (Profile.intensity e)
  | _ -> Alcotest.fail "entry missing"

let suite =
  [
    Alcotest.test_case "snapshot: roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot: mismatch detection" `Quick test_snapshot_detects_mismatches;
    Alcotest.test_case "snapshot: garbage rejected" `Quick test_snapshot_rejects_garbage;
    Alcotest.test_case "iterate core vs all" `Quick test_iterate_core_respects_exec_size;
    Alcotest.test_case "move over injected range" `Quick test_move_injected_range_only;
    Alcotest.test_case "view helpers" `Quick test_view_helpers;
    Alcotest.test_case "arg traffic model" `Quick test_arg_bytes_model;
    Alcotest.test_case "profile timed/intensity" `Quick test_profile_timed_and_intensity;
  ]
